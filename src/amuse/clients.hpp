#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "amuse/delta.hpp"
#include "amuse/rpc.hpp"
#include "kernels/vec3.hpp"

namespace jungle::amuse {

using kernels::Vec3;

/// Typed client-side proxies over the RPC protocol — what an AMUSE script
/// holds instead of raw channels. All bulk state moves as flat arrays (the
/// real AMUSE does the same for performance).
///
/// The gravity and hydro proxies keep an epoch-tagged *state cache*: a
/// get_state tells the worker what the client already holds, and only the
/// fields that changed since travel back (delta exchange). The field proxy
/// keeps per-direction source/point/accel caches mirroring the coupler
/// worker's. `set_delta_exchange(false)` restores the pre-delta full-fetch
/// wire behaviour (the synchronous baseline the benches compare against).

struct GravityState {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
};

struct HydroState {
  std::vector<double> mass;
  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
  std::vector<double> internal_energy;
  std::vector<double> density;
};

/// Client half of the delta state exchange, shared by the gravity and hydro
/// proxies: what we hold, at which content id, and the per-field change ids
/// the last reply reported (these feed the coupler's source/point tags).
/// Cache invalidation is by construction, not by reset: the fault path
/// builds fresh clients (empty caches) and restarted workers mint fresh
/// state-id instances, so stale entries can never match.
struct DeltaCacheInfo {
  StateId id = 0;
  std::uint64_t mask = 0;
  std::array<StateId, state_field::kCount> field_ids{};
  bool delta_enabled = true;
};

/// GravitationalDynamics interface (phiGRAPE worker).
class GravityClient {
 public:
  explicit GravityClient(std::unique_ptr<RpcClient> rpc)
      : rpc_(std::move(rpc)) {}

  void set_params(double eps2, double eta);
  void add_particles(std::span<const double> masses,
                     std::span<const Vec3> positions,
                     std::span<const Vec3> velocities);
  void evolve(double t_end) { evolve_async(t_end).get(); }
  Future evolve_async(double t_end);

  /// Sync full-state fetch (delta-aware: only changed fields travel).
  GravityState get_state();
  /// Pipelined fetch: issue now, merge the delta into the cache later.
  Future request_state(std::uint64_t want_mask = state_field::gravity_all);
  const GravityState& finish_state(Future& reply, std::uint64_t want_mask);
  const GravityState& cached_state() const noexcept { return cache_; }

  /// Content ids for the coupler's caches (0 until the field was fetched).
  StateId coupling_sources_id() const {
    return combine_state_ids(info_.field_ids[0], info_.field_ids[1]);
  }
  StateId position_id() const { return info_.field_ids[1]; }

  /// (kinetic, potential) in N-body units.
  std::pair<double, double> energies();
  void kick(std::span<const Vec3> delta_v) { kick_async(delta_v).get(); }
  Future kick_async(std::span<const Vec3> delta_v);
  void set_masses(std::span<const double> masses);
  double model_time();

  void set_delta_exchange(bool enabled) {
    info_.delta_enabled = enabled;
    kick_primed_ = false;
  }

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
  GravityState cache_;
  DeltaCacheInfo info_;
  std::vector<Vec3> last_kick_;
  bool kick_primed_ = false;
};

/// GravityField interface (Octgrav / Fi worker) — the coupling kernel.
class FieldClient {
 public:
  explicit FieldClient(std::unique_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  void set_sources(std::span<const double> masses,
                   std::span<const Vec3> positions);
  /// Client-side copy of the last sources sent — what a checkpoint of this
  /// otherwise stateless-per-kick worker consists of.
  const std::vector<double>& last_source_mass() const noexcept {
    return last_mass_;
  }
  const std::vector<Vec3>& last_source_position() const noexcept {
    return last_position_;
  }
  std::vector<Vec3> accel_at(std::span<const Vec3> points) {
    return decode_accel(accel_at_async(points).get());
  }
  Future accel_at_async(std::span<const Vec3> points);
  static std::vector<Vec3> decode_accel(util::ByteReader reader);

  /// One-shot epoch-tagged cross-gravity query (the pipelined data path):
  /// sources and points are only uploaded when their content id differs
  /// from what the worker already caches under `tag`, and a reply of
  /// "unchanged" re-uses the locally cached accel of the same inputs.
  Future accel_for_async(FieldTag tag, StateId sources_id,
                         std::span<const double> source_mass,
                         std::span<const Vec3> source_position,
                         StateId points_id, std::span<const Vec3> points);
  const std::vector<Vec3>& finish_accel(FieldTag tag, Future& reply);

  void set_delta_exchange(bool enabled) { delta_enabled_ = enabled; }

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  struct TagRecord {
    StateId sources_id = 0;
    StateId points_id = 0;
    std::vector<Vec3> accel;
    bool has_accel = false;
  };

  std::unique_ptr<RpcClient> rpc_;
  std::vector<double> last_mass_;
  std::vector<Vec3> last_position_;
  std::map<std::uint64_t, TagRecord> tags_;
  bool delta_enabled_ = true;
};

/// Hydrodynamics interface (Gadget worker).
class HydroClient {
 public:
  explicit HydroClient(std::unique_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  void set_params(double eps2, double theta);
  void add_gas(std::span<const double> masses,
               std::span<const Vec3> positions,
               std::span<const Vec3> velocities,
               std::span<const double> internal_energies);
  void evolve(double t_end) { evolve_async(t_end).get(); }
  Future evolve_async(double t_end);

  HydroState get_state();
  Future request_state(std::uint64_t want_mask = state_field::hydro_all);
  const HydroState& finish_state(Future& reply, std::uint64_t want_mask);
  const HydroState& cached_state() const noexcept { return cache_; }

  StateId coupling_sources_id() const {
    return combine_state_ids(info_.field_ids[0], info_.field_ids[1]);
  }
  StateId position_id() const { return info_.field_ids[1]; }

  /// (kinetic, thermal, potential) in N-body units.
  std::tuple<double, double, double> energies();
  void kick(std::span<const Vec3> delta_v) { kick_async(delta_v).get(); }
  Future kick_async(std::span<const Vec3> delta_v);
  void inject(std::span<const std::int32_t> indices,
              std::span<const double> delta_u);
  double model_time();

  void set_delta_exchange(bool enabled) {
    info_.delta_enabled = enabled;
    kick_primed_ = false;
  }

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
  HydroState cache_;
  DeltaCacheInfo info_;
  std::vector<Vec3> last_kick_;
  bool kick_primed_ = false;
};

/// StellarEvolution interface (SSE worker).
class StellarClient {
 public:
  explicit StellarClient(std::unique_ptr<RpcClient> rpc)
      : rpc_(std::move(rpc)) {}

  void add_stars(std::span<const double> zams_masses);
  void evolve_to(double age_myr);
  std::vector<double> masses();
  std::vector<double> luminosities();
  /// Stars that exploded during the last evolve_to.
  std::vector<std::int32_t> supernovae();
  double mass_loss();

  RpcClient& rpc() noexcept { return *rpc_; }
  void close() { rpc_->close(); }

 private:
  std::unique_ptr<RpcClient> rpc_;
};

}  // namespace jungle::amuse
