#include "amuse/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>

#include "amuse/diagnostics.hpp"
#include "amuse/faultpoint.hpp"
#include "amuse/faults.hpp"
#include "amuse/ic.hpp"
#include "amuse/sharded.hpp"
#include "kernels/morton.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace jungle::amuse::experiment {

using sched::Role;

// ---------------------------------------------------------------- testbed

JungleTestbed::JungleTestbed(bool verbose) {
  using sim::net::gbit;
  using sim::net::ms;
  if (verbose) log::set_threshold(log::Level::info);
  obs::trace::bind_clock(
      this, [this] { return sim_.now(); },
      [this] { return sim_.current_name(); });

  // Effective per-core/GPU rates for irregular tree/N-body/SPH kernels
  // (a few percent of peak — see DESIGN.md calibration notes).
  net_.add_site("vu", 0.1 * ms, 1 * gbit);
  net_.add_site("seattle", 0.1 * ms, 1 * gbit);
  net_.add_site("uva", 0.05 * ms, 10 * gbit);
  net_.add_site("delft", 0.05 * ms, 10 * gbit);
  net_.add_site("leiden", 0.1 * ms, 1 * gbit);
  net_.add_site("das-vu", 2e-6, 32 * gbit);  // cluster interconnect

  sim::Host& desktop = net_.add_host("desktop", "vu", 4, 0.15);
  desktop.set_gpu(sim::GpuSpec{"geforce-9600gt", 1.2});
  net_.add_host("laptop", "seattle", 2, 0.12);

  sim::Host& lgm_fs = net_.add_host("fs-lgm", "leiden", 8, 0.3);
  lgm_fs.firewall().allow_inbound = false;  // ssh only, hub tunnels
  sim::Host& lgm_node = net_.add_host("lgm-node", "leiden", 8, 0.3);
  lgm_node.set_gpu(sim::GpuSpec{"tesla-c2050", 6.0});

  net_.add_host("fs-uva", "uva", 8, 0.3);
  net_.add_host("uva-node", "uva", 8, 0.3);

  net_.add_host("fs-delft", "delft", 8, 0.3);
  for (int i = 0; i < 2; ++i) {
    sim::Host& node =
        net_.add_host("delft-gpu" + std::to_string(i), "delft", 8, 0.3);
    node.set_gpu(sim::GpuSpec{"gtx480", 2.4});
  }

  net_.add_host("fs-dasvu", "das-vu", 8, 0.3);
  for (int i = 0; i < 8; ++i) {
    net_.add_host("dasvu" + std::to_string(i), "das-vu", 8, 0.3);
  }

  // Lightpaths of Figs 9/12.
  net_.add_link("vu", "uva", 0.2 * ms, 10 * gbit, "starplane-uva");
  net_.add_link("vu", "delft", 0.5 * ms, 10 * gbit, "starplane-delft");
  net_.add_link("vu", "leiden", 0.5 * ms, 1 * gbit, "lgm-lightpath");
  net_.add_link("vu", "das-vu", 0.05 * ms, 10 * gbit, "vu-campus");
  net_.add_link("seattle", "vu", 45 * ms, 1 * gbit, "transatlantic");
  net_.set_loopback(5e-6, 10 * gbit);

  client_ = &desktop;
  deployer_ = std::make_unique<deploy::Deployer>(net_, sockets_, desktop);
  auto cluster = [&](const std::string& name, const std::string& frontend,
                     std::vector<std::string> node_names) {
    gat::Resource resource;
    resource.name = name;
    resource.middleware = "sge";
    resource.frontend = &net_.host(frontend);
    for (const auto& node : node_names) {
      resource.nodes.push_back(&net_.host(node));
    }
    resource.queue_base_delay = 1.0;
    resource.queue = std::make_shared<gat::ClusterQueue>(sim_);
    resource.queue->set_meter(resource.name);
    resource.queue->set_nodes(resource.nodes);
    deployer_->add_resource(resource);
  };
  cluster("lgm", "fs-lgm", {"lgm-node"});
  cluster("das4-uva", "fs-uva", {"uva-node"});
  cluster("das4-delft", "fs-delft", {"delft-gpu0", "delft-gpu1"});
  cluster("das4-vu", "fs-dasvu",
          {"dasvu0", "dasvu1", "dasvu2", "dasvu3", "dasvu4", "dasvu5",
           "dasvu6", "dasvu7"});
}

JungleTestbed::JungleTestbed(const util::Config& config, bool verbose) {
  if (verbose) log::set_threshold(log::Level::info);
  obs::trace::bind_clock(
      this, [this] { return sim_.now(); },
      [this] { return sim_.current_name(); });
  deploy::build_topology(config, net_);
  auto names = net_.host_names();
  if (names.empty()) {
    throw ConfigError("scenario topology declares no hosts");
  }
  std::string client_name = config.has_section("scenario")
                                ? config.get_or("scenario", "client", names[0])
                                : names[0];
  client_ = &net_.host(client_name);
  deployer_ = std::make_unique<deploy::Deployer>(net_, sockets_, *client_);
  deployer_->add_resources(deploy::resources_from_config(config, net_));
}

sim::Host& JungleTestbed::client_host() {
  if (client_ == nullptr) throw ConfigError("testbed has no client host");
  return *client_;
}

IbisDaemon& JungleTestbed::daemon(sim::Host& client) {
  if (!daemon_) {
    daemon_ = std::make_unique<IbisDaemon>(*deployer_, net_, sockets_, client);
  }
  return *daemon_;
}

// ------------------------------------------------------------------- spec

namespace {

bool is_dynamic(Role role) {
  return role == Role::gravity || role == Role::hydro;
}

const char* role_label(Role role) {
  return role == Role::coupler ? "field" : sched::role_name(role);
}

bool kernel_valid(Role role, const std::string& kernel) {
  if (kernel.empty() || kernel == "auto") return true;
  switch (role) {
    case Role::gravity:
      return kernel == "phigrape" || kernel == "phigrape-gpu";
    case Role::hydro:
      return kernel == "gadget";
    case Role::coupler:
      return kernel == "fi" || kernel == "octgrav";
    case Role::stellar:
      return kernel == "sse";
  }
  return false;
}

/// The IC recipe each role knows how to generate ("" = the role default).
/// Anything else would be silently replaced by the default — reject it.
bool ic_valid(Role role, const std::string& ic) {
  if (ic.empty()) return true;
  switch (role) {
    case Role::gravity: return ic == "plummer";
    case Role::hydro: return ic == "gas-sphere";
    case Role::stellar: return ic == "salpeter";
    case Role::coupler: return false;  // field kernels own no particles
  }
  return false;
}

}  // namespace

int ExperimentSpec::find(const std::string& model_name) const {
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (models[i].name == model_name) return static_cast<int>(i);
  }
  return -1;
}

void ExperimentSpec::validate() const {
  auto fail = [&](const std::string& what) {
    throw ConfigError("experiment '" + name + "': " + what);
  };
  if (models.empty()) fail("declares no models");
  if (dt <= 0.0) fail("dt must be positive");
  if (iterations < 1) fail("iterations must be >= 1");
  if (se_every < 1) fail("se_every must be >= 1");
  if (rpc_timeout < 0.0) fail("rpc_timeout must be >= 0 (0 disables it)");

  bool any_dynamic = false;
  for (const ModelSpec& model : models) {
    if (model.name.empty()) fail("a model has no name");
    for (const ModelSpec& other : models) {
      if (&other != &model && other.name == model.name) {
        fail("duplicate model name '" + model.name + "'");
      }
    }
    if (!kernel_valid(model.role, model.kernel)) {
      fail("model '" + model.name + "': kernel '" + model.kernel +
           "' does not implement the " + role_label(model.role) + " role");
    }
    if (!ic_valid(model.role, model.ic)) {
      fail("model '" + model.name + "': ic '" + model.ic +
           "' is not an IC recipe of the " + role_label(model.role) +
           " role");
    }
    if (is_dynamic(model.role) || model.role == Role::stellar) {
      if (model.n == 0) {
        fail("model '" + model.name + "' declares no particles (n = 0)");
      }
    } else if (model.n != 0) {
      fail("field model '" + model.name +
           "' declares particles; field kernels evaluate, they do not own "
           "state");
    }
    if (is_dynamic(model.role)) any_dynamic = true;

    if (model.workers < 1) {
      fail("model '" + model.name + "': workers must be >= 1, got " +
           std::to_string(model.workers));
    }
    if (model.workers > 1 && model.role != Role::gravity) {
      fail("model '" + model.name + "': workers = " +
           std::to_string(model.workers) +
           " but only gravity models shard (domain decomposition)");
    }
    if (model.workers > 1 && model.kernel == "phigrape-gpu") {
      fail("model '" + model.name +
           "': sharding is CPU-only (kernel phigrape-gpu cannot split "
           "across workers)");
    }

    if (model.role == Role::stellar) {
      int target = find(model.of);
      if (model.of.empty() || target < 0) {
        fail("stellar model '" + model.name + "' must name the gravity "
             "model its masses flow into (of = ...)");
      }
      if (models[static_cast<std::size_t>(target)].role != Role::gravity) {
        fail("stellar model '" + model.name + "': of = '" + model.of +
             "' is not a gravity model");
      }
      if (!model.feedback.empty()) {
        int sink = find(model.feedback);
        if (sink < 0 ||
            models[static_cast<std::size_t>(sink)].role != Role::hydro) {
          fail("stellar model '" + model.name + "': feedback = '" +
               model.feedback + "' is not a hydro model");
        }
      }
    } else if (!model.of.empty() || !model.feedback.empty()) {
      fail("model '" + model.name +
           "' sets stellar wiring (of/feedback) but is not a stellar model");
    }
  }
  if (!any_dynamic) fail("declares no dynamic (gravity/hydro) model");

  std::vector<bool> field_used(models.size(), false);
  for (const CouplingSpec& coupling : couplings) {
    std::string label =
        "coupling '" + (coupling.name.empty() ? "?" : coupling.name) + "'";
    int field = find(coupling.field);
    if (field < 0) {
      fail(label + " references unknown field model '" + coupling.field +
           "'");
    }
    if (models[static_cast<std::size_t>(field)].role != Role::coupler) {
      fail(label + ": '" + coupling.field + "' is not a field model");
    }
    field_used[static_cast<std::size_t>(field)] = true;
    for (const std::string& end : {coupling.a, coupling.b}) {
      int slot = find(end);
      if (slot < 0) {
        fail(label + " references unknown model '" + end + "'");
      }
      if (!is_dynamic(models[static_cast<std::size_t>(slot)].role)) {
        fail(label + ": '" + end + "' is not a dynamic model");
      }
    }
    if (coupling.a == coupling.b) {
      fail(label + " couples '" + coupling.a + "' to itself");
    }
    if (coupling.every < 1) fail(label + ": every must be >= 1");
    if (iterations % coupling.every != 0) {
      // A truncated window would end after an opening kick whose closing
      // half never fires — a silently lopsided trajectory.
      fail(label + ": iterations (" + std::to_string(iterations) +
           ") must cover whole coupling windows (every = " +
           std::to_string(coupling.every) + ")");
    }
  }
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (models[i].role == Role::coupler && !field_used[i]) {
      fail("field model '" + models[i].name +
           "' is not referenced by any coupling");
    }
  }

  // Fault policy: a kill switch on a spec that cannot recover would be
  // silently ignored — make it a validation error instead.
  if (!kill_host.empty() && !checkpointing) {
    fail("kill_host is set but checkpointing is off — the fault policy "
         "would be silently ignored");
  }
  if (!kill_host.empty() && kill_after_iteration < 1) {
    fail("kill_host is set but kill_after_iteration names no step");
  }
  if (!kill_host.empty() && kill_after_iteration > iterations) {
    fail("kill_after_iteration (" + std::to_string(kill_after_iteration) +
         ") is past the end of the run (" + std::to_string(iterations) +
         " iterations) — the fault would silently never fire");
  }
  if (kill_host.empty() && kill_after_iteration >= 1) {
    fail("kill_after_iteration is set but kill_host names no host");
  }
  if (!kill_process.empty() && kill_host.empty()) {
    fail("kill_process is set but kill_host names no host to kill it on");
  }
  if (!flap_link.empty() && flap_after_iteration < 1) {
    fail("flap_link is set but flap_after_iteration names no step");
  }
  if (flap_link.empty() &&
      (flap_after_iteration >= 1 || flap_streams > 0)) {
    fail("flap injection is configured but flap_link names no link");
  }

  // Drift-triggered migration reuses the checkpoint/rollback machinery —
  // without checkpointing there is no consistent state to migrate.
  if (replan && !checkpointing) {
    fail("replan is set but checkpointing is off — migration needs a "
         "committed checkpoint to restore from");
  }
  if (!(replan_drift > 1.0)) {
    fail("replan_drift must be a factor > 1, got " +
         std::to_string(replan_drift));
  }
}

sched::Workload ExperimentSpec::workload() const {
  sched::Workload load;
  load.dt = dt;
  load.iterations = iterations;
  load.se_every = se_every;
  load.with_stellar_evolution = false;
  for (const ModelSpec& model : models) {
    sched::ModelLoad entry;
    entry.name = model.name;
    entry.role = model.role;
    entry.n = model.n;
    entry.kernel = model.kernel == "auto" ? "" : model.kernel;
    entry.nranks = model.nranks;
    entry.workers = model.workers;
    if (model.role == Role::stellar) {
      entry.of = find(model.of);
      load.with_stellar_evolution = true;
    }
    load.models.push_back(std::move(entry));
  }
  for (const CouplingSpec& coupling : couplings) {
    load.couplings.push_back(
        {find(coupling.field), find(coupling.a), find(coupling.b),
         coupling.every});
  }
  // Legacy scalar mirror (display + any classic-path consumer).
  for (const ModelSpec& model : models) {
    if (model.role == Role::gravity) {
      load.n_stars = model.n;
      break;
    }
  }
  load.n_gas = 0;
  for (const ModelSpec& model : models) {
    if (model.role == Role::hydro) {
      load.n_gas = model.n;
      break;
    }
  }
  return load;
}

// -------------------------------------------------------------- INI parse

namespace {

Vec3 parse_vec3(const std::string& text, const std::string& where) {
  std::istringstream in(text);
  Vec3 value{};
  if (!(in >> value.x >> value.y >> value.z)) {
    throw ConfigError(where + ": expected three numbers, got '" + text + "'");
  }
  return value;
}

Role parse_role(const std::string& text, const std::string& where) {
  if (text == "gravity") return Role::gravity;
  if (text == "hydro") return Role::hydro;
  if (text == "field" || text == "coupler") return Role::coupler;
  if (text == "stellar") return Role::stellar;
  throw ConfigError(where + ": unknown role '" + text +
                    "' (gravity|hydro|field|stellar)");
}

}  // namespace

bool config_declares_experiment(const util::Config& config) {
  for (const std::string& section : config.sections()) {
    if (util::starts_with(section, "model ")) return true;
  }
  return false;
}

ExperimentSpec ExperimentSpec::from_config(const util::Config& config) {
  ExperimentSpec spec;
  if (config.has_section("experiment")) {
    const std::string s = "experiment";
    spec.name = config.get_or(s, "name", spec.name);
    spec.dt = config.get_double_or(s, "dt", spec.dt);
    spec.iterations =
        static_cast<int>(config.get_int_or(s, "iterations", spec.iterations));
    spec.se_every =
        static_cast<int>(config.get_int_or(s, "se_every", spec.se_every));
    spec.seed = static_cast<std::uint64_t>(
        config.get_int_or(s, "seed", static_cast<long>(spec.seed)));
    std::string path = config.get_or(s, "datapath", "pipelined");
    if (path == "pipelined") {
      spec.datapath = Datapath::pipelined;
    } else if (path == "synchronous") {
      spec.datapath = Datapath::synchronous;
    } else {
      throw ConfigError("experiment: unknown datapath '" + path + "'");
    }
    spec.myr_per_nbody_time =
        config.get_double_or(s, "myr_per_nbody_time", spec.myr_per_nbody_time);
    spec.feedback_efficiency = config.get_double_or(s, "feedback_efficiency",
                                                    spec.feedback_efficiency);
    spec.wind_specific_energy = config.get_double_or(
        s, "wind_specific_energy", spec.wind_specific_energy);
    spec.supernova_energy =
        config.get_double_or(s, "supernova_energy", spec.supernova_energy);
    spec.checkpointing =
        config.get_bool_or(s, "checkpointing", spec.checkpointing);
    spec.kill_host = config.get_or(s, "kill_host", "");
    spec.kill_after_iteration = static_cast<int>(
        config.get_int_or(s, "kill_after_iteration", -1));
    spec.kill_process = config.get_or(s, "kill_process", "");
    spec.flap_link = config.get_or(s, "flap_link", "");
    spec.flap_after_iteration = static_cast<int>(
        config.get_int_or(s, "flap_after_iteration", -1));
    spec.flap_down_s =
        config.get_double_or(s, "flap_down_s", spec.flap_down_s);
    spec.flap_streams = static_cast<int>(
        config.get_int_or(s, "flap_streams", spec.flap_streams));
    spec.flap_streams_heal_s = config.get_double_or(
        s, "flap_streams_heal_s", spec.flap_streams_heal_s);
    spec.rpc_timeout =
        config.get_double_or(s, "rpc_timeout", spec.rpc_timeout);
    spec.client = config.get_or(s, "client", "");
    spec.replan = config.get_bool_or(s, "replan", spec.replan);
    spec.replan_drift =
        config.get_double_or(s, "replan_drift", spec.replan_drift);
  }

  for (const std::string& section : config.sections()) {
    if (util::starts_with(section, "model ")) {
      ModelSpec model;
      model.name = util::trim(section.substr(6));
      model.role = parse_role(config.get(section, "role"), section);
      model.kernel = config.get_or(section, "kernel", "auto");
      model.n = static_cast<std::size_t>(config.get_int_or(section, "n", 0));
      model.nranks =
          static_cast<int>(config.get_int_or(section, "nranks", 0));
      model.nodes = static_cast<int>(config.get_int_or(section, "nodes", 1));
      model.workers =
          static_cast<int>(config.get_int_or(section, "workers", 1));
      model.eps2 = config.get_double_or(section, "eps2", model.eps2);
      model.eta = config.get_double_or(section, "eta", model.eta);
      model.theta = config.get_double_or(section, "theta", model.theta);
      model.ic = config.get_or(section, "ic", "");
      model.total_mass =
          config.get_double_or(section, "total_mass", model.total_mass);
      model.radius = config.get_double_or(section, "radius", model.radius);
      model.u_frac = config.get_double_or(section, "u_frac", model.u_frac);
      if (config.has_key(section, "offset")) {
        model.offset = parse_vec3(config.get(section, "offset"), section);
      }
      if (config.has_key(section, "velocity")) {
        model.bulk_velocity =
            parse_vec3(config.get(section, "velocity"), section);
      }
      model.ensure_massive =
          config.get_double_or(section, "ensure_massive", 0.0);
      model.of = config.get_or(section, "of", "");
      model.feedback = config.get_or(section, "feedback", "");
      model.place = config.get_or(section, "place", "");
      spec.models.push_back(std::move(model));
    } else if (util::starts_with(section, "coupling ")) {
      CouplingSpec coupling;
      coupling.name = util::trim(section.substr(9));
      coupling.field = config.get(section, "field");
      coupling.a = config.get(section, "a");
      coupling.b = config.get(section, "b");
      coupling.every =
          static_cast<int>(config.get_int_or(section, "every", 1));
      spec.couplings.push_back(std::move(coupling));
    }
  }
  return spec;
}

// ------------------------------------------------------------- placement

namespace {

/// Default worker spec of a pinned model (the scheduler builds its own for
/// free models): kernel "auto" resolves by the target host's GPU.
amuse::WorkerSpec pinned_worker_spec(const ModelSpec& model,
                                     const sim::Host& host, bool local) {
  amuse::WorkerSpec spec;
  bool gpu = host.gpu().has_value();
  switch (model.role) {
    case Role::gravity:
      spec.code = model.kernel == "auto"
                      ? (gpu ? "phigrape-gpu" : "phigrape")
                      : model.kernel;
      spec.ncores = spec.code == "phigrape" ? 2 : 1;
      break;
    case Role::coupler:
      spec.code = model.kernel == "auto" ? (gpu ? "octgrav" : "fi")
                                         : model.kernel;
      spec.ncores = spec.code == "fi" ? 2 : 1;
      break;
    case Role::hydro:
      spec.code = "gadget";
      spec.nranks = model.nranks > 0 ? model.nranks : (local ? 2 : model.nodes);
      spec.ncores = local ? 1 : 2;
      break;
    case Role::stellar:
      spec.code = "sse";
      break;
  }
  return spec;
}

std::optional<sched::Assignment> resolve_pin(JungleTestbed& bed,
                                             const ModelSpec& model,
                                             sim::Host& client) {
  if (model.place.empty()) return std::nullopt;
  sched::Assignment pin;
  if (model.place == "local") {
    pin.host = &client;
    pin.spec = pinned_worker_spec(model, client, /*local=*/true);
    pin.nodes = 1;
  } else {
    auto parts = util::split(model.place, '/');
    const gat::Resource& resource = bed.deployer().resource(parts[0]);
    pin.resource = resource.name;
    const sim::Host* host = nullptr;
    if (parts.size() > 1) {
      for (const sim::Host* node : resource.nodes) {
        if (node != nullptr && node->name() == parts[1]) host = node;
      }
      if (host == nullptr) {
        throw ConfigError("model '" + model.name + "': place = '" +
                          model.place + "' names no node of resource '" +
                          resource.name + "'");
      }
    } else if (!resource.nodes.empty()) {
      host = resource.nodes.front();
    } else {
      host = resource.frontend;
    }
    if (host == nullptr) {
      throw ConfigError("model '" + model.name + "': resource '" +
                        resource.name + "' has no usable node");
    }
    pin.host = host;
    pin.spec = pinned_worker_spec(model, *host, /*local=*/false);
    pin.nodes = std::max(1, model.nodes);
  }
  return pin;
}

sim::Host& client_of(JungleTestbed& bed, const ExperimentSpec& spec) {
  return spec.client.empty() ? bed.client_host()
                             : bed.network().host(spec.client);
}

sched::Placement plan_in(JungleTestbed& bed, const ExperimentSpec& spec,
                         sim::Host& client,
                         const sched::Scheduler& scheduler) {
  sched::Workload load = spec.workload();
  std::vector<std::optional<sched::Assignment>> pins;
  pins.reserve(spec.models.size());
  for (const ModelSpec& model : spec.models) {
    pins.push_back(resolve_pin(bed, model, client));
  }
  sched::Placement plan = scheduler.plan(load, pins);
  // The spec's numeric kernel parameters always win (they are physics, not
  // placement); codes and widths were already constrained via the workload.
  for (std::size_t i = 0; i < spec.models.size(); ++i) {
    plan.roles[i].spec.eps2 = spec.models[i].eps2;
    plan.roles[i].spec.eta = spec.models[i].eta;
    plan.roles[i].spec.theta = spec.models[i].theta;
    // Worker-side metrics carry the model name, not the kernel code, so
    // worker.<name>.* lines up with the plan's roles and rpc.<name>.*.
    plan.roles[i].spec.meter = spec.models[i].name;
  }
  return plan;
}

}  // namespace

sched::Placement plan_experiment(JungleTestbed& bed,
                                 const ExperimentSpec& spec) {
  spec.validate();
  sim::Host& client = client_of(bed, spec);
  sched::Scheduler scheduler(bed.network(), client,
                             bed.deployer().resources());
  return plan_in(bed, spec, client, scheduler);
}

// ------------------------------------------------------------------ runner

namespace {

/// Live clients of one model of the running graph. Exactly one of the
/// client pointers is set, matching the model's role. Checkpoints live in
/// one graph-wide GraphCheckpoint (atomic commit), not per model.
struct ModelRuntime {
  std::unique_ptr<GravityClient> gravity;
  std::unique_ptr<HydroClient> hydro;
  std::unique_ptr<FieldClient> field;
  std::unique_ptr<StellarClient> stellar;

  std::vector<double> zams;

  DynamicsClient* dynamics() {
    if (gravity) return gravity.get();
    return hydro.get();
  }
  /// The RPC the fault machinery watches: a sharded facade reports the
  /// first dead shard so death_cause/revive act on the actual casualty.
  RpcClient& rpc() {
    if (gravity) return gravity->fault_rpc();
    if (hydro) return hydro->fault_rpc();
    if (field) return field->rpc();
    return stellar->rpc();
  }
  void close() {
    if (gravity) gravity->close();
    if (hydro) hydro->close();
    if (field) field->close();
    if (stellar) stellar->close();
  }
};

std::unique_ptr<RpcClient> start_assignment(JungleTestbed& bed,
                                            sim::Host& client,
                                            DaemonClient& daemon_client,
                                            const sched::Assignment& a) {
  if (a.local()) {
    return start_local_worker(bed.sockets(), bed.network(), client, client,
                              a.spec, ChannelKind::mpi);
  }
  return daemon_client.start_worker(a.spec, a.resource, a.nodes);
}

Bridge::Config bridge_config(const ExperimentSpec& spec) {
  Bridge::Config config;
  config.dt = spec.dt;
  config.se_every = spec.se_every;
  config.synchronous_datapath = spec.datapath == Datapath::synchronous;
  config.myr_per_nbody_time = spec.myr_per_nbody_time;
  config.feedback_efficiency = spec.feedback_efficiency;
  config.wind_specific_energy = spec.wind_specific_energy;
  config.supernova_energy = spec.supernova_energy;
  return config;
}

}  // namespace

Result run_experiment(JungleTestbed& bed, const ExperimentSpec& spec) {
  spec.validate();
  sim::Host& client = client_of(bed, spec);
  bed.daemon(client);  // paper step 3: "start the Ibis-Daemon"

  sched::Scheduler scheduler(bed.network(), client,
                             bed.deployer().resources());
  sched::Workload load = spec.workload();
  sched::Placement plan = plan_in(bed, spec, client, scheduler);

  std::size_t n_models = spec.models.size();
  Result result;
  result.experiment = spec.name;
  result.iterations = spec.iterations;
  result.placement = plan.describe();
  result.modeled_seconds_per_iteration = plan.modeled_seconds_per_iteration;

  bed.simulation().spawn("amuse-script", [&] {
    DaemonClient daemon_client(bed.sockets(), client);
    std::vector<ModelRuntime> models(n_models);

    // A model whose state exchanges cross a link flagged `fp_truncate`
    // narrows its position wire format to f32 (the cost model priced the
    // placement at the narrowed volume).
    auto apply_fp_truncation = [&](std::size_t i) {
      DynamicsClient* dynamics = models[i].dynamics();
      const sim::Host* host = plan.roles[i].host;
      if (dynamics == nullptr || host == nullptr) return;
      if (bed.network().path_fp_truncate(client, *host)) {
        dynamics->set_fp32_positions(true);
      }
    };

    // Start every model's worker in declaration order. A sharded gravity
    // model (workers > 1) starts K single-node workers — the cluster queue
    // hands each its own node — and wraps them in the ShardedGravityClient
    // facade, so the bridge/couplings/fault machinery see one model.
    auto start_model = [&](std::size_t i) {
      const ModelSpec& model = spec.models[i];
      obs::trace::Span spawn =
          obs::trace::span("spawn:" + model.name, "deploy");
      if (model.role == Role::gravity && model.workers > 1) {
        std::vector<std::unique_ptr<GravityClient>> shards;
        shards.reserve(static_cast<std::size_t>(model.workers));
        for (int k = 0; k < model.workers; ++k) {
          sched::Assignment shard = plan.roles[i];
          shard.nodes = 1;
          // Shard 0 carries the model's meter name so calibration reads
          // worker.<name>.compute_s ~ total/K, matching the modeled
          // compute / K; the others are distinguishable in traces.
          std::string meter =
              k == 0 ? model.name : model.name + "#" + std::to_string(k);
          shard.spec.meter = meter;
          auto rpc = start_assignment(bed, client, daemon_client, shard);
          rpc->set_call_timeout(spec.rpc_timeout);
          rpc->set_meter(meter);
          shards.push_back(std::make_unique<GravityClient>(std::move(rpc)));
        }
        models[i].gravity =
            std::make_unique<ShardedGravityClient>(std::move(shards));
        apply_fp_truncation(i);
        return;
      }
      auto rpc = start_assignment(bed, client, daemon_client, plan.roles[i]);
      rpc->set_call_timeout(spec.rpc_timeout);
      // Client-side RPC metrics under the model name, matching the
      // worker-side series wired through WorkerSpec::meter.
      rpc->set_meter(model.name);
      switch (model.role) {
        case Role::gravity:
          models[i].gravity = std::make_unique<GravityClient>(std::move(rpc));
          break;
        case Role::hydro:
          models[i].hydro = std::make_unique<HydroClient>(std::move(rpc));
          break;
        case Role::coupler:
          models[i].field = std::make_unique<FieldClient>(std::move(rpc));
          break;
        case Role::stellar:
          models[i].stellar = std::make_unique<StellarClient>(std::move(rpc));
          break;
      }
      apply_fp_truncation(i);
    };
    bool fault_tolerant = spec.checkpointing;

    // ----- the fault path: exclude what died, re-place the affected
    // models, and roll every evolving worker back to the last committed
    // graph checkpoint (restarted integrators start at t=0; the new bridge
    // carries the clock offset, the SE mass mappings and the SE cadence
    // phase forward). Recovery itself is built to survive further faults:
    // every sub-step that talks to the jungle sits in a bounded retry, so a
    // second death while re-placing the first is handled, not fatal.

    // Replacement/retry budget across the whole run — generous enough for
    // cascaded faults, small enough to turn a re-place livelock (a hole,
    // if one existed) into a hard error rather than an endless loop.
    int replace_attempts = 0;
    const int kReplaceBudget = 8 * static_cast<int>(n_models) + 8;
    auto spend_attempt = [&] {
      if (++replace_attempts > kReplaceBudget) {
        throw CodeError("fault recovery exceeded its replacement budget (" +
                        std::to_string(kReplaceBudget) + " attempts)");
      }
    };

    // Global exclusions derived from one death report. Per-worker causes
    // are handled per model in recover(); this handles what the report
    // itself names (the crashed host, and its whole resource when the dead
    // machine is a frontend — jobs submit through it even when the compute
    // nodes survive).
    auto note_death = [&](const WorkerDiedError& death) {
      log::warn("experiment") << "recovering from: " << death.what();
      faultpoint::reach(faultpoint::Point::recover_exclude, -1, death.host());
      if (death.cause() == WorkerDiedError::Cause::host_crash &&
          !death.host().empty()) {
        scheduler.exclude_host(death.host());
        std::string owner = scheduler.resource_of(death.host());
        if (!owner.empty()) {
          const gat::Resource& res = bed.deployer().resource(owner);
          if (res.frontend != nullptr &&
              res.frontend->name() == death.host()) {
            scheduler.exclude_resource(owner);
          }
        }
      }
    };

    // A model needs re-placing when its client was poisoned *or* its host
    // is gone and the client just has not noticed yet (no RPC since the
    // crash) — restarting onto a dead machine would only fail later.
    auto model_dead = [&](std::size_t i) {
      if (!models[i].rpc().alive()) return true;
      const sched::Assignment& a = plan.roles[i];
      return !a.local() && a.host != nullptr && !a.host->is_up();
    };

    auto replace_slot = [&](std::size_t i) {
      spend_attempt();
      plan.roles[i] = scheduler.replace(load, plan, static_cast<int>(i));
      // Physics, not placement: the replacement keeps the spec's kernel
      // parameters, exactly as plan_in installs them at first placement.
      plan.roles[i].spec.eps2 = spec.models[i].eps2;
      plan.roles[i].spec.eta = spec.models[i].eta;
      plan.roles[i].spec.theta = spec.models[i].theta;
      plan.roles[i].spec.meter = spec.models[i].name;
    };

    // In-place revive (PR 8): cause=process_crash means the daemon's
    // supervisor already restarted the crashed worker on the same node and
    // kept the relay open — revive the client over the same link and
    // restore state into the blank replacement. No exclusions, no
    // re-placement; the PR 2 path stays the fallback tier (the daemon
    // reports host_crash when the node is gone or its restart budget is
    // spent).
    std::vector<bool> revived(n_models, false);
    auto reset_model_caches = [&](ModelRuntime& model) {
      if (model.gravity) {
        model.gravity->reset_delta_caches();
      } else if (model.hydro) {
        model.hydro->reset_delta_caches();
      } else if (model.field) {
        model.field->reset_delta_caches();
      } else if (model.stellar) {
        model.stellar->reset_delta_caches();
      }
    };
    auto try_revive = [&](std::size_t i) {
      RpcClient& rpc = models[i].rpc();
      if (rpc.alive() ||
          rpc.death_cause() != WorkerDiedError::Cause::process_crash) {
        return false;
      }
      const sched::Assignment& a = plan.roles[i];
      if (a.local() || (a.host != nullptr && !a.host->is_up())) return false;
      spend_attempt();
      rpc.revive();
      reset_model_caches(models[i]);
      revived[i] = true;
      log::info("experiment")
          << "worker '" << spec.models[i].name
          << "' restarted in place; reviving the client on the same link";
      return true;
    };

    // Initial deployment is as exposed to the jungle as any later step: a
    // node can crash mid-spawn, a frontend can die holding half the graph.
    // Same policy as recovery — exclude what failed, re-place, try again.
    for (std::size_t i = 0; i < n_models; ++i) {
      for (;;) {
        try {
          start_model(i);
          break;
        } catch (const WorkerDiedError& death) {
          if (!fault_tolerant || plan.roles[i].local()) throw;
          ++result.restarts;
          note_death(death);
          if (death.cause() != WorkerDiedError::Cause::host_crash) {
            scheduler.exclude_resource(plan.roles[i].resource);
          }
          replace_slot(i);
        } catch (const CodeError& startup) {
          if (!fault_tolerant || plan.roles[i].local()) throw;
          ++result.restarts;
          log::warn("experiment")
              << "re-placing '" << spec.models[i].name
              << "' after startup failure: " << startup.what();
          scheduler.exclude_resource(plan.roles[i].resource);
          replace_slot(i);
        }
      }
    }
    if (result.restarts > 0) {
      // Initial deployment already deviated from the planned placement:
      // re-score so the dashboard describes what is actually running.
      scheduler.score(load, plan);
      result.placement = plan.describe();
      result.modeled_seconds_per_iteration =
          plan.modeled_seconds_per_iteration;
    }

    bool synchronous = spec.datapath == Datapath::synchronous;
    auto apply_datapath = [&] {
      // The baseline mode turns the delta exchange off end to end so the
      // wire behaves exactly like the pre-overhaul full-fetch path.
      for (ModelRuntime& model : models) {
        if (model.gravity) model.gravity->set_delta_exchange(!synchronous);
        if (model.hydro) model.hydro->set_delta_exchange(!synchronous);
        if (model.field) model.field->set_delta_exchange(!synchronous);
        if (model.stellar) model.stellar->set_delta_exchange(!synchronous);
      }
    };
    apply_datapath();

    // The last committed graph-wide checkpoint: one object, installed by a
    // single move after every model captured — all models commit or none.
    GraphCheckpoint committed;
    committed.resize(n_models);

    // Initial conditions: every model draws from one seeded stream in
    // declaration order, so the spec is a reproducible experiment.
    util::Rng rng(spec.seed);
    for (std::size_t i = 0; i < n_models; ++i) {
      const ModelSpec& model = spec.models[i];
      switch (model.role) {
        case Role::gravity: {
          auto body = ic::plummer_sphere(model.n, rng);
          double scale_r = model.radius > 0.0 ? model.radius : 1.0;
          double scale_m = model.total_mass;
          if (scale_m != 1.0 || scale_r != 1.0) {
            double scale_v = std::sqrt(scale_m / scale_r);
            for (double& m : body.mass) m *= scale_m;
            for (Vec3& p : body.position) p = p * scale_r;
            for (Vec3& v : body.velocity) v = v * scale_v;
          }
          if (model.offset.norm2() > 0.0 ||
              model.bulk_velocity.norm2() > 0.0) {
            for (Vec3& p : body.position) p = p + model.offset;
            for (Vec3& v : body.velocity) v = v + model.bulk_velocity;
          }
          if (model.workers > 1) {
            // Domain decomposition: order the particles along the Morton
            // curve so each shard's contiguous index range is a spatially
            // compact block. Checkpoints store the permuted arrays, so
            // restores and rollbacks replay the same decomposition.
            auto order = kernels::morton_order(body.position);
            body.mass = kernels::permute(
                std::span<const double>(body.mass), order);
            body.position = kernels::permute(
                std::span<const Vec3>(body.position), order);
            body.velocity = kernels::permute(
                std::span<const Vec3>(body.velocity), order);
          }
          models[i].gravity->add_particles(body.mass, body.position,
                                           body.velocity);
          // Checkpoints start as the initial conditions: a worker lost on
          // the very first step rolls back to t=0 (epoch 0).
          committed.gravity[i].state =
              GravityState{std::move(body.mass), std::move(body.position),
                           std::move(body.velocity)};
          committed.gravity[i].eps2 = model.eps2;
          committed.gravity[i].eta = model.eta;
          break;
        }
        case Role::hydro: {
          double radius = model.radius > 0.0 ? model.radius : 1.5;
          auto cloud = ic::gas_sphere(model.n, rng, model.total_mass, radius,
                                      model.u_frac);
          if (model.offset.norm2() > 0.0 ||
              model.bulk_velocity.norm2() > 0.0) {
            for (Vec3& p : cloud.position) p = p + model.offset;
            for (Vec3& v : cloud.velocity) v = v + model.bulk_velocity;
          }
          models[i].hydro->add_gas(cloud.mass, cloud.position, cloud.velocity,
                                   cloud.internal_energy);
          committed.hydro[i].state =
              HydroState{std::move(cloud.mass), std::move(cloud.position),
                         std::move(cloud.velocity),
                         std::move(cloud.internal_energy), {}};
          committed.hydro[i].eps2 = model.eps2;
          committed.hydro[i].theta = model.theta;
          break;
        }
        case Role::stellar: {
          models[i].zams = ic::salpeter_masses(model.n, rng);
          if (model.ensure_massive > 0.0) {
            models[i].zams[0] = model.ensure_massive;
          }
          models[i].stellar->add_stars(models[i].zams);
          break;
        }
        case Role::coupler:
          break;
      }
    }

    // Wire the bridge graph: dynamic models become systems, couplings
    // resolve to system indices, stellar models to their typed targets.
    std::vector<int> system_of(n_models, -1);
    auto build_bridge = [&](double t_start, int step_offset) {
      std::vector<Bridge::System> systems;
      for (std::size_t i = 0; i < n_models; ++i) {
        if (models[i].dynamics() == nullptr) continue;
        system_of[i] = static_cast<int>(systems.size());
        systems.push_back({spec.models[i].name, models[i].dynamics()});
      }
      std::vector<Bridge::Coupling> couplings;
      for (const CouplingSpec& coupling : spec.couplings) {
        couplings.push_back(
            {models[static_cast<std::size_t>(spec.find(coupling.field))]
                 .field.get(),
             system_of[static_cast<std::size_t>(spec.find(coupling.a))],
             system_of[static_cast<std::size_t>(spec.find(coupling.b))],
             coupling.every});
      }
      std::vector<Bridge::Stellar> stellar;
      for (std::size_t i = 0; i < n_models; ++i) {
        if (!models[i].stellar) continue;
        const ModelSpec& model = spec.models[i];
        Bridge::Stellar link;
        link.client = models[i].stellar.get();
        link.into =
            models[static_cast<std::size_t>(spec.find(model.of))].gravity.get();
        link.feedback =
            model.feedback.empty()
                ? nullptr
                : models[static_cast<std::size_t>(spec.find(model.feedback))]
                      .hydro.get();
        stellar.push_back(link);
      }
      Bridge::Config config = bridge_config(spec);
      // Absolute-clock restart: rebuilt bridges continue from the committed
      // checkpoint's exact clock bits, and restored workers carry the same
      // absolute time — evolve targets replay the fault-free sequence.
      config.t_start = t_start;
      config.step_offset = step_offset;
      return std::make_unique<Bridge>(std::move(systems),
                                      std::move(couplings),
                                      std::move(stellar), config);
    };
    auto bridge = build_bridge(0.0, 0);

    auto recover = [&](const WorkerDiedError& death) {
      bool any_dead = false;
      for (std::size_t i = 0; i < n_models; ++i) {
        if (!model_dead(i)) continue;
        any_dead = true;
        if (try_revive(i)) continue;  // in-place restart: keep the slot
        const sched::Assignment& was = plan.roles[i];
        if (was.local()) {
          throw CodeError("the client machine lost its own worker ('" +
                          spec.models[i].name + "'); nothing to re-place "
                          "onto");
        }
        // Per-worker cause: a crashed host is already excluded; a process
        // crash blames neither host nor resource (the machine restarted
        // the worker fine — revive only failed because the node went down
        // meanwhile); anything else (link fault, timeout, unknown)
        // condemns the whole resource — the machine may be fine, the
        // route to it is not.
        RpcClient& rpc = models[i].rpc();
        if (!rpc.alive() &&
            rpc.death_cause() != WorkerDiedError::Cause::host_crash &&
            rpc.death_cause() != WorkerDiedError::Cause::process_crash) {
          scheduler.exclude_resource(was.resource);
        }
        replace_slot(i);
      }
      if (!any_dead) {
        // Stale report: nothing is actually dead. Escalate as a plain
        // CodeError — rethrowing the WorkerDiedError would bounce between
        // here and the double-fault retry loop forever.
        throw CodeError(std::string("unrecoverable death report (no model "
                                    "affected): ") +
                        death.what());
      }

      // The rollback target is the clock of the checkpoint we restore
      // from — paired by construction, not re-derived as epoch * dt (the
      // accumulated sum and the product can differ in the last ulp, and
      // bit-exact replay needs the accumulated bits).
      double t_done = committed.time;
      std::vector<std::pair<std::vector<double>, std::vector<double>>>
          mappings;
      for (std::size_t link = 0, i = 0; i < n_models; ++i) {
        if (!models[i].stellar) continue;
        mappings.push_back(bridge->se_mapping(link++));
      }

      // All dynamic models share the bridge clock: they roll back together
      // so their restarted integrators agree at t=0 (+ offset). Field and
      // stellar workers are replaced only when they died. Each model's
      // close/start/restore can itself be hit by a fault (a fresh host
      // crashing mid-restore, a frontend dying between the re-place
      // decision and the submit): exclude what failed, pick another target
      // and try again, within the budget.
      for (std::size_t i = 0; i < n_models; ++i) {
        ModelRuntime& model = models[i];
        bool dynamic = model.gravity != nullptr || model.hydro != nullptr;
        if (!dynamic && !model_dead(i) && !revived[i]) continue;
        for (;;) {
          try {
            // A revived slot keeps its client and relay: the supervised
            // replacement worker is blank, so it only needs the restore.
            if (!revived[i]) {
              model.close();
              start_model(i);
            }
            if (model.gravity) {
              restore_gravity(*model.gravity, committed.gravity[i]);
            } else if (model.hydro) {
              restore_hydro(*model.hydro, committed.hydro[i]);
            } else if (model.field) {
              restore_field(*model.field, committed.field[i]);
            } else if (model.stellar) {
              model.stellar->add_stars(model.zams);
              if (t_done > 0.0) {
                model.stellar->evolve_to(t_done * spec.myr_per_nbody_time);
              }
            }
            break;
          } catch (const WorkerDiedError& again) {
            // The replacement (or the machine it landed on) died while we
            // were restoring into it.
            note_death(again);
            if (try_revive(i)) continue;  // another supervised restart
            revived[i] = false;  // fall back: rebuild client and placement
            if (plan.roles[i].local()) throw;
            RpcClient& rpc = models[i].rpc();
            if (!rpc.alive() &&
                rpc.death_cause() != WorkerDiedError::Cause::host_crash &&
                rpc.death_cause() != WorkerDiedError::Cause::process_crash) {
              scheduler.exclude_resource(plan.roles[i].resource);
            }
            replace_slot(i);
          } catch (const CodeError& startup) {
            // The daemon could not start the worker (e.g. the frontend
            // died between the re-place decision and the submit). The
            // resource is not usable right now — place elsewhere.
            if (plan.roles[i].local()) throw;
            log::warn("experiment")
                << "re-placing '" << spec.models[i].name
                << "' after startup failure: " << startup.what();
            scheduler.exclude_resource(plan.roles[i].resource);
            replace_slot(i);
          }
        }
      }

      // Fresh clients start with empty delta caches, and restarted workers
      // mint a fresh state-id instance: nothing cached before the rollback
      // (client states, coupler sources/accels) can be mistaken for
      // current content during the replay.
      apply_datapath();

      faultpoint::reach(faultpoint::Point::recover_rebuild, committed.epoch);
      bridge = build_bridge(t_done, committed.epoch);
      for (std::size_t link = 0; link < mappings.size(); ++link) {
        bridge->set_se_mapping(std::move(mappings[link].first),
                               std::move(mappings[link].second), link);
      }
      // Re-score the whole post-fault placement so the dashboard's
      // modeled-vs-measured panel describes what is actually running.
      scheduler.score(load, plan);
      result.placement = plan.describe();
      result.modeled_seconds_per_iteration =
          plan.modeled_seconds_per_iteration;
    };

    // Drift-triggered migration: the same machinery as fault recovery, but
    // from a healthy state — the committed checkpoint equals the live
    // state, so restoring into the new placement replays nothing. Only
    // models whose assignment actually changed are moved; a death mid-move
    // falls through to the ordinary recovery path.
    auto migrate_to = [&](sched::Placement fresh) {
      ++result.replans;
      obs::metrics::counter("sched.replans").increment();
      obs::trace::Span span = obs::trace::span("migrate", "sched");
      double t_done = committed.time;
      std::vector<std::pair<std::vector<double>, std::vector<double>>>
          mappings;
      for (std::size_t link = 0, i = 0; i < n_models; ++i) {
        if (!models[i].stellar) continue;
        mappings.push_back(bridge->se_mapping(link++));
      }
      std::vector<bool> moved(n_models, false);
      for (std::size_t i = 0; i < n_models; ++i) {
        moved[i] = fresh.roles[i].where() != plan.roles[i].where();
      }
      plan = std::move(fresh);
      for (std::size_t i = 0; i < n_models; ++i) {
        if (!moved[i]) continue;
        ModelRuntime& model = models[i];
        model.close();
        start_model(i);
        if (model.gravity) {
          restore_gravity(*model.gravity, committed.gravity[i]);
        } else if (model.hydro) {
          restore_hydro(*model.hydro, committed.hydro[i]);
        } else if (model.field) {
          restore_field(*model.field, committed.field[i]);
        } else if (model.stellar) {
          model.stellar->add_stars(model.zams);
          if (t_done > 0.0) {
            model.stellar->evolve_to(t_done * spec.myr_per_nbody_time);
          }
        }
      }
      apply_datapath();
      bridge = build_bridge(t_done, committed.epoch);
      for (std::size_t link = 0; link < mappings.size(); ++link) {
        bridge->set_se_mapping(std::move(mappings[link].first),
                               std::move(mappings[link].second), link);
      }
      scheduler.score(load, plan);
      result.placement = plan.describe();
      result.modeled_seconds_per_iteration =
          plan.modeled_seconds_per_iteration;
    };

    bed.network().reset_traffic();

    // ----- observability cursors: every per-iteration figure is a delta of
    // monotone counters (the registry is process-global and never reset by
    // a run), so reports stay correct across rollbacks and repeated runs.
    struct MetricCursor {
      std::vector<double> compute_s;  // per model, worker-side
      double flops = 0.0;
      double compute_total = 0.0;
      double substeps = 0.0;
      double rpc_calls = 0.0;
      double rpc_retries = 0.0;
      double degraded_transfers = 0.0;
    };
    auto read_metrics = [&] {
      MetricCursor cursor;
      cursor.compute_s.resize(n_models);
      for (std::size_t i = 0; i < n_models; ++i) {
        const std::string& name = spec.models[i].name;
        cursor.compute_s[i] =
            obs::metrics::counter_value("worker." + name + ".compute_s");
        cursor.compute_total += cursor.compute_s[i];
        cursor.flops +=
            obs::metrics::counter_value("worker." + name + ".flops");
        cursor.substeps +=
            obs::metrics::counter_value("worker." + name + ".substeps");
        cursor.rpc_calls +=
            obs::metrics::counter_value("rpc." + name + ".calls");
      }
      cursor.rpc_retries = obs::metrics::counter_value("rpc.retries");
      cursor.degraded_transfers =
          static_cast<double>(bed.network().degraded_transfers());
      return cursor;
    };
    auto wan_link_bytes = [&] {
      std::map<std::string, double> by_link;
      for (const auto& link : bed.network().traffic_report()) {
        if (link.name == "loopback" || link.name.rfind("lan:", 0) == 0) {
          continue;
        }
        by_link[link.name] += link.bytes_by_class[0] +
                              link.bytes_by_class[1] +
                              link.bytes_by_class[2] + link.bytes_by_class[3];
      }
      return by_link;
    };
    auto wan_total = [](const std::map<std::string, double>& by_link) {
      double total = 0.0;
      for (const auto& [name, bytes] : by_link) total += bytes;
      return total;
    };

    // ----- the calibration loop: the first cleanly measured iteration
    // closes the scheduler's modeled-vs-measured gap. Per-role measured
    // compute (worker.<name>.compute_s deltas) calibrates the flop charges;
    // the running placement is re-scored with the calibrated model, and —
    // when the spec opts in — a drift past the bound triggers a proactive
    // re-plan with migration at the checkpoint boundary.
    bool calibrated = false;
    auto calibrate = [&](const MetricCursor& before,
                         const MetricCursor& after) {
      calibrated = true;
      sched::Calibration calibration;
      double pre_drift = 0.0;
      std::ostringstream table;
      table << "calibrated cost table (iteration 1):";
      for (std::size_t i = 0; i < n_models; ++i) {
        double measured = after.compute_s[i] - before.compute_s[i];
        double modeled = plan.roles[i].compute_seconds;
        if (measured <= 0.0 || modeled <= 0.0) continue;
        double ratio = measured / modeled;
        calibration.set_scale(spec.models[i].name, ratio);
        pre_drift = std::max(pre_drift, std::max(ratio, 1.0 / ratio));
        obs::metrics::gauge("sched.drift." + spec.models[i].name).set(ratio);
        table << " " << spec.models[i].name << ": measured=" << measured
              << " s modeled=" << modeled << " s scale="
              << calibration.scale_for(spec.models[i].name) << ";";
      }
      result.precalibration_drift = pre_drift;
      obs::metrics::gauge("sched.precalibration_drift").set(pre_drift);
      scheduler.set_calibration(calibration);

      // Re-score a copy: modeled_seconds_per_iteration stays the original
      // (uncalibrated) prediction, the calibrated figure rides alongside.
      sched::Placement scored = plan;
      scheduler.score(load, scored);
      result.calibrated_seconds_per_iteration =
          scored.modeled_seconds_per_iteration;
      double post_drift = 0.0;
      for (std::size_t i = 0; i < n_models; ++i) {
        double measured = after.compute_s[i] - before.compute_s[i];
        double modeled = scored.roles[i].compute_seconds;
        if (measured <= 0.0 || modeled <= 0.0) continue;
        double ratio = measured / modeled;
        post_drift = std::max(post_drift, std::max(ratio, 1.0 / ratio));
      }
      result.compute_drift = post_drift;
      obs::metrics::gauge("sched.compute_drift").set(post_drift);
      log::info("sched") << table.str() << " drift " << pre_drift
                         << "x -> " << post_drift << "x, calibrated modeled="
                         << result.calibrated_seconds_per_iteration
                         << " s/iter";
      return pre_drift;
    };

    double wall_start = bed.simulation().now();
    int completed = 0;
    bool killed = false;
    bool flapped = false;
    // Replay detection: a step whose index was already attempted re-runs
    // work a rollback threw away (with per-step checkpoints the rollback
    // target is always the last *completed* step, so the replayed step is
    // the attempted-and-killed one).
    int attempted_steps = 0;
    int restarts_mark = result.restarts;
    double iter_start = bed.simulation().now();
    MetricCursor metric_cursor = read_metrics();
    std::map<std::string, double> link_cursor = wan_link_bytes();
    while (completed < spec.iterations) {
      try {
        bool replaying = completed + 1 <= attempted_steps;
        attempted_steps = std::max(attempted_steps, completed + 1);
        {
          obs::trace::Span iter = obs::trace::span(
              "iteration:" + std::to_string(completed + 1), "experiment");
          bridge->step();
        }
        if (fault_tolerant) {
          // Checkpointing itself talks to the workers and can die mid-way:
          // stage the whole graph into a fresh snapshot, then install it
          // with one move — the commit is atomic across the graph, so no
          // interleaving of deaths can leave mixed-epoch checkpoints.
          obs::trace::Span ckpt = obs::trace::span("checkpoint", "fault");
          double ckpt_start = bed.simulation().now();
          GraphCheckpoint staged;
          staged.epoch = completed + 1;
          staged.time = bridge->time();
          staged.resize(n_models);
          for (std::size_t i = 0; i < n_models; ++i) {
            faultpoint::reach(faultpoint::Point::ckpt_capture, completed,
                              spec.models[i].name);
            if (models[i].gravity) {
              staged.gravity[i] = checkpoint_gravity(*models[i].gravity);
              staged.gravity[i].eps2 = spec.models[i].eps2;
              staged.gravity[i].eta = spec.models[i].eta;
            } else if (models[i].hydro) {
              staged.hydro[i] = checkpoint_hydro(*models[i].hydro);
              staged.hydro[i].eps2 = spec.models[i].eps2;
              staged.hydro[i].theta = spec.models[i].theta;
            } else if (models[i].field) {
              staged.field[i] = checkpoint_field(*models[i].field);
            }
          }
          // Named per-model commit slots: the window where a non-atomic
          // protocol would interleave. Injections here prove there is no
          // state in which some models committed and others did not.
          for (std::size_t i = 0; i < n_models; ++i) {
            faultpoint::Context slot;
            slot.point = faultpoint::Point::ckpt_commit;
            slot.iteration = completed;
            slot.detail = spec.models[i].name;
            if (faultpoint::active()) {
              // Per-model digest: lets the explorer name the model that
              // diverged, not just the epoch.
              if (models[i].gravity) {
                slot.digest = digest(staged.gravity[i]);
              } else if (models[i].hydro) {
                slot.digest = digest(staged.hydro[i]);
              } else if (models[i].field) {
                slot.digest = digest(staged.field[i]);
              }
            }
            faultpoint::reach(slot);
          }
          committed = std::move(staged);
          if (faultpoint::active()) {
            faultpoint::Context done;
            done.point = faultpoint::Point::ckpt_committed;
            done.iteration = completed;
            done.digest = digest(committed);
            faultpoint::reach(done);
          }
          obs::metrics::counter("fault.checkpoints").increment();
          obs::metrics::histogram("fault.checkpoint_s")
              .observe(bed.simulation().now() - ckpt_start);
        }
        ++completed;

        // --- per-iteration report: deltas across the step just done ---
        MetricCursor metrics_now = read_metrics();
        std::map<std::string, double> links_now = wan_link_bytes();
        diagnostics::IterationReport row;
        row.iteration = completed;
        row.seconds = bed.simulation().now() - iter_start;
        row.wan_bytes = wan_total(links_now) - wan_total(link_cursor);
        row.flops = metrics_now.flops - metric_cursor.flops;
        row.compute_seconds =
            metrics_now.compute_total - metric_cursor.compute_total;
        row.substeps = static_cast<std::uint64_t>(
            metrics_now.substeps - metric_cursor.substeps + 0.5);
        row.rpc_calls = static_cast<std::uint64_t>(
            metrics_now.rpc_calls - metric_cursor.rpc_calls + 0.5);
        row.rpc_retries = static_cast<std::uint64_t>(
            metrics_now.rpc_retries - metric_cursor.rpc_retries + 0.5);
        row.degraded = metrics_now.degraded_transfers -
                           metric_cursor.degraded_transfers >
                       0.5;
        row.replay = replaying;
        row.restarts = result.restarts - restarts_mark;
        if (row.replay) {
          obs::metrics::counter("fault.replayed_steps").increment();
        }
        if (row.degraded) {
          // A bulk transfer this step rode on fewer streams than planned
          // (partial stripe failure): the step completed, degraded.
          obs::metrics::counter("fault.degraded_iterations").increment();
        }
        result.iteration_log.push_back(row);

        if (!calibrated && !row.replay && row.restarts == 0) {
          double drift = calibrate(metric_cursor, metrics_now);
          std::ostringstream links;
          links << "per-link WAN volume (iteration 1):";
          for (const auto& [name, bytes] : links_now) {
            double delta = bytes - link_cursor[name];
            if (delta <= 0.0) continue;
            links << " " << name << "=" << util::format_bytes(delta);
          }
          log::info("sched") << links.str();

          // Proactive re-plan: when the measured world disagrees with the
          // model past the bound, ask the calibrated scheduler for a fresh
          // placement and migrate at this checkpoint boundary — but only
          // when the move actually pays for itself.
          if (spec.replan && drift > spec.replan_drift) {
            sched::Placement fresh = plan_in(bed, spec, client, scheduler);
            bool moved = false;
            for (std::size_t i = 0; i < n_models; ++i) {
              if (fresh.roles[i].where() != plan.roles[i].where()) {
                moved = true;
              }
            }
            if (moved && fresh.modeled_seconds_per_iteration <
                             0.95 * result.calibrated_seconds_per_iteration) {
              log::info("sched")
                  << "re-planning after drift " << drift << "x > "
                  << spec.replan_drift << "x: " << fresh.describe();
              migrate_to(std::move(fresh));
            }
          }
        }
        restarts_mark = result.restarts;
        metric_cursor = std::move(metrics_now);
        link_cursor = std::move(links_now);
        iter_start = bed.simulation().now();

        if (fault_tolerant && !killed && !spec.kill_host.empty() &&
            completed == spec.kill_after_iteration) {
          killed = true;
          if (spec.kill_process.empty()) {
            bed.network().host(spec.kill_host).crash();
          } else {
            // Process-level fault: kill one process on the host (daemon,
            // proxy, worker) and leave the machine up — this is the tier
            // the supervisors recover in place.
            bed.network().host(spec.kill_host).kill_process(
                spec.kill_process);
          }
        }
        if (!flapped && !spec.flap_link.empty() &&
            completed == spec.flap_after_iteration) {
          flapped = true;
          if (spec.flap_streams > 0) {
            bed.network().fail_streams(spec.flap_link, spec.flap_streams,
                                       spec.flap_streams_heal_s);
          } else {
            bed.network().flap_link(spec.flap_link, spec.flap_down_s);
          }
        }
      } catch (const WorkerDiedError& death) {
        if (!fault_tolerant) throw;
        obs::trace::Span rollback = obs::trace::span("recover", "fault");
        double recover_start = bed.simulation().now();
        obs::metrics::counter("fault.rollbacks").increment();
        ++result.restarts;
        spend_attempt();
        // Recovery can itself be interrupted by another death (a double
        // fault): keep recovering until a round goes through cleanly.
        WorkerDiedError current = death;
        for (;;) {
          try {
            note_death(current);
            recover(current);
            break;
          } catch (const WorkerDiedError& again) {
            ++result.restarts;
            spend_attempt();
            current = again;
          }
        }
        completed = committed.epoch;
        obs::metrics::histogram("fault.recover_s")
            .observe(bed.simulation().now() - recover_start);
        // The aborted step's partial work must not pollute the replay
        // row's figures: restart every cursor at the rollback point.
        metric_cursor = read_metrics();
        link_cursor = wan_link_bytes();
        iter_start = bed.simulation().now();
      }
    }
    double wall = bed.simulation().now() - wall_start;
    result.seconds_per_iteration = wall / spec.iterations;

    // Final observables. The pipelined path only moved mass+position
    // during coupling; pull the full states (velocities, internal energy)
    // once for the diagnostics, plus each model's energies.
    std::vector<double> star_mass;
    std::vector<Vec3> star_pos;
    std::vector<double> gas_mass, gas_u;
    std::vector<Vec3> gas_pos, gas_vel;
    for (std::size_t i = 0; i < n_models; ++i) {
      const ModelSpec& model = spec.models[i];
      if (!models[i].gravity && !models[i].hydro) continue;
      ModelResult state;
      state.name = model.name;
      state.role = model.role;
      if (models[i].gravity) {
        state.gravity = models[i].gravity->get_state();
        auto [kinetic, potential] = models[i].gravity->energies();
        state.kinetic = kinetic;
        state.potential = potential;
        star_mass.insert(star_mass.end(), state.gravity.mass.begin(),
                         state.gravity.mass.end());
        star_pos.insert(star_pos.end(), state.gravity.position.begin(),
                        state.gravity.position.end());
      } else {
        state.hydro = models[i].hydro->get_state();
        auto [kinetic, thermal, potential] = models[i].hydro->energies();
        state.kinetic = kinetic;
        state.thermal = thermal;
        state.potential = potential;
        gas_mass.insert(gas_mass.end(), state.hydro.mass.begin(),
                        state.hydro.mass.end());
        gas_pos.insert(gas_pos.end(), state.hydro.position.begin(),
                       state.hydro.position.end());
        gas_vel.insert(gas_vel.end(), state.hydro.velocity.begin(),
                       state.hydro.velocity.end());
        gas_u.insert(gas_u.end(), state.hydro.internal_energy.begin(),
                     state.hydro.internal_energy.end());
      }
      result.models.push_back(std::move(state));
    }
    if (!gas_mass.empty()) {
      result.bound_gas_fraction = diagnostics::bound_gas_fraction(
          gas_mass, gas_pos, gas_vel, gas_u, star_mass, star_pos);
    }

    for (ModelRuntime& model : models) model.close();
  });
  bed.simulation().run();

  for (const auto& link : bed.network().traffic_report()) {
    // WAN = anything that is not a host loopback or an intra-site LAN.
    bool wan = link.name != "loopback" && link.name.rfind("lan:", 0) != 0;
    if (!wan) continue;
    result.wan_bytes += link.bytes_by_class[0] + link.bytes_by_class[1] +
                        link.bytes_by_class[2] + link.bytes_by_class[3];
    result.wan_ipl_bytes +=
        link.bytes_by_class[static_cast<int>(sim::TrafficClass::ipl)];
  }
  result.wan_ipl_bytes_per_step =
      spec.iterations > 0 ? result.wan_ipl_bytes / spec.iterations : 0.0;

  // Dashboard: the Figs 10/11 analog plus the placement panel — which
  // machine ran which model, and modeled vs. measured cost.
  std::ostringstream panel;
  panel << bed.deployer().dashboard();
  panel << "-- placement (" << spec.name << ") --\n";
  for (std::size_t i = 0; i < plan.roles.size(); ++i) {
    const sched::Assignment& a = plan.roles[i];
    panel << "  " << plan.names[i] << " ("
          << sched::role_name(plan.kinds[i]) << "): " << a.spec.code << " @ "
          << a.where() << " modeled compute=" << a.compute_seconds
          << " s comm=" << a.comm_seconds << " s\n";
  }
  panel << "  modeled=" << result.modeled_seconds_per_iteration
        << " s/iter measured=" << result.seconds_per_iteration << " s/iter";
  if (result.restarts > 0) panel << " restarts=" << result.restarts;
  if (result.replans > 0) panel << " replans=" << result.replans;
  panel << "\n";
  if (result.calibrated_seconds_per_iteration > 0.0) {
    panel << "  calibrated=" << result.calibrated_seconds_per_iteration
          << " s/iter drift=" << result.precalibration_drift << "x -> "
          << result.compute_drift << "x\n";
  }
  panel << diagnostics::iteration_table(result.iteration_log);
  result.dashboard = panel.str();
  return result;
}

Result run_experiment(const ExperimentSpec& spec) {
  JungleTestbed bed;
  return run_experiment(bed, spec);
}

Result run_experiment_config(const util::Config& config) {
  JungleTestbed bed(config);
  return run_experiment(bed, ExperimentSpec::from_config(config));
}

}  // namespace jungle::amuse::experiment
