#include "zorilla/zorilla.hpp"

#include <algorithm>
#include <deque>

#include "util/logging.hpp"

namespace jungle::zorilla {

namespace {
constexpr double kViewEntryBytes = 64.0;  // per member in a gossip exchange
constexpr double kFloodProbeBytes = 96.0;
}  // namespace

ZorillaNode& Overlay::add_node(sim::Host& host, ZorillaNode* bootstrap) {
  auto [it, inserted] =
      nodes_.try_emplace(host.name(), std::make_unique<ZorillaNode>(*this, host));
  if (!inserted) return *it->second;
  order_.push_back(host.name());
  if (bootstrap != nullptr) {
    it->second->view_.insert(bootstrap->host().name());
    bootstrap->view_.insert(host.name());
  }
  return *it->second;
}

ZorillaNode* Overlay::node_on(const std::string& host_name) {
  auto it = nodes_.find(host_name);
  return it == nodes_.end() ? nullptr : it->second.get();
}

int Overlay::gossip_round() {
  int learned = 0;
  for (const std::string& name : order_) {
    ZorillaNode& node = *nodes_.at(name);
    if (!node.host().is_up()) continue;
    // Pick a random known peer (not self).
    std::vector<std::string> peers(node.view_.begin(), node.view_.end());
    std::erase(peers, name);
    if (peers.empty()) continue;
    const std::string& peer_name = peers[rng_.below(peers.size())];
    ZorillaNode* peer = node_on(peer_name);
    if (peer == nullptr || !peer->host().is_up()) continue;
    // Charge the exchange both ways (view sizes at exchange time).
    net_.send(node.host(), peer->host(),
              kViewEntryBytes * static_cast<double>(node.view_.size()),
              sim::TrafficClass::control);
    net_.send(peer->host(), node.host(),
              kViewEntryBytes * static_cast<double>(peer->view_.size()),
              sim::TrafficClass::control);
    std::size_t before = node.view_.size() + peer->view_.size();
    node.view_.insert(peer->view_.begin(), peer->view_.end());
    peer->view_.insert(node.view_.begin(), node.view_.end());
    learned += static_cast<int>(node.view_.size() + peer->view_.size() -
                                before);
  }
  return learned;
}

bool Overlay::converged() const {
  for (const auto& [name, node] : nodes_) {
    if (node->view_.size() != nodes_.size()) return false;
  }
  return true;
}

int Overlay::gossip_until_converged(int max_rounds) {
  for (int round = 1; round <= max_rounds; ++round) {
    gossip_round();
    if (converged()) return round;
  }
  return max_rounds;
}

std::vector<ZorillaNode*> Overlay::discover(ZorillaNode& origin, int count,
                                            const Requirements& req) {
  // Deterministic BFS flood across overlay edges.
  struct Visit {
    ZorillaNode* node;
    int depth;
  };
  std::vector<std::pair<int, ZorillaNode*>> candidates;
  std::set<std::string> seen{origin.host().name()};
  std::deque<Visit> frontier{{&origin, 0}};
  while (!frontier.empty()) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (node->matches(req)) candidates.emplace_back(depth, node);
    for (const std::string& neighbour_name : node->view_) {
      if (seen.count(neighbour_name)) continue;
      seen.insert(neighbour_name);
      ZorillaNode* neighbour = node_on(neighbour_name);
      if (neighbour == nullptr || !neighbour->host().is_up()) continue;
      net_.send(node->host(), neighbour->host(), kFloodProbeBytes,
                sim::TrafficClass::control);
      frontier.push_back({neighbour, depth + 1});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->host().name() < b.second->host().name();
            });
  std::vector<ZorillaNode*> chosen;
  for (auto& [depth, node] : candidates) {
    if (static_cast<int>(chosen.size()) == count) break;
    node->set_busy(true);
    chosen.push_back(node);
  }
  if (static_cast<int>(chosen.size()) < count) {
    for (ZorillaNode* node : chosen) node->set_busy(false);
    return {};
  }
  return chosen;
}

void ZorillaAdapter::submit(std::shared_ptr<gat::Job> job,
                            const gat::JobDescription& desc,
                            gat::Resource& resource) {
  // The client submits through its local Zorilla node (or the resource's
  // frontend node when the client itself runs none).
  ZorillaNode* origin = overlay_.node_on(broker().client().name());
  if (origin == nullptr && resource.frontend != nullptr) {
    origin = overlay_.node_on(resource.frontend->name());
  }
  if (origin == nullptr) {
    throw GatError("zorilla: no overlay node near " +
                   broker().client().name());
  }
  Requirements req;
  req.needs_gpu = desc.needs_gpu;
  auto nodes = overlay_.discover(*origin, desc.node_count, req);
  if (nodes.empty()) {
    throw GatError("zorilla: flood found no " +
                   std::to_string(desc.node_count) + " free nodes");
  }
  std::vector<sim::Host*> hosts;
  for (ZorillaNode* node : nodes) hosts.push_back(&node->host());

  auto context = std::make_shared<gat::JobContext>();
  context->hosts = hosts;
  context->resource = &resource;
  context->job = job.get();
  auto release = [nodes] {
    for (ZorillaNode* node : nodes) node->set_busy(false);
  };
  job->set_release(release);
  job->set_state(gat::JobState::scheduled);
  sim::ProcessId pid = hosts.front()->spawn(
      "zorilla-job:" + desc.name, [job, desc, context, release] {
        try {
          desc.main(*context);
          release();
          job->set_state(gat::JobState::stopped);
        } catch (const Error& failure) {
          release();
          job->set_state(gat::JobState::error, failure.what());
        }
      });
  job->set_allocation(hosts, pid);
  job->set_state(gat::JobState::running);
}

std::vector<ZorillaNode*> Overlay::all_nodes() {
  std::vector<ZorillaNode*> nodes;
  for (const std::string& name : order_) nodes.push_back(nodes_.at(name).get());
  return nodes;
}

ZorillaNode* ResourceSelector::select(const Requirements& req,
                                      const std::set<std::string>& exclude) {
  ZorillaNode* best = nullptr;
  for (ZorillaNode* node : overlay_.all_nodes()) {
    if (exclude.count(node->host().name())) continue;
    if (!node->matches(req)) continue;
    if (best == nullptr) {
      best = node;
      continue;
    }
    // Prefer a GPU when one was asked for implicitly by more capable
    // hardware; otherwise most cores wins, name breaks ties.
    bool node_gpu = node->host().gpu().has_value();
    bool best_gpu = best->host().gpu().has_value();
    if (node_gpu != best_gpu) {
      if (node_gpu && req.needs_gpu) best = node;
      continue;
    }
    if (node->host().cores() > best->host().cores()) best = node;
  }
  return best;
}

}  // namespace jungle::zorilla
