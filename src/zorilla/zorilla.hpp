#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gat/gat.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace jungle::zorilla {

/// What a job (or the resource selector) needs from a node.
struct Requirements {
  bool needs_gpu = false;
  int min_cores = 1;
};

class Overlay;

/// One Zorilla peer: a membership view that grows by gossip, plus a busy
/// flag used by flood scheduling.
class ZorillaNode {
 public:
  ZorillaNode(Overlay& overlay, sim::Host& host) : overlay_(overlay),
                                                   host_(&host) {
    view_.insert(host.name());
  }

  sim::Host& host() noexcept { return *host_; }
  const std::set<std::string>& view() const noexcept { return view_; }
  bool busy() const noexcept { return busy_; }
  void set_busy(bool busy) noexcept { busy_ = busy; }

  bool matches(const Requirements& req) const {
    if (!host_->is_up() || busy_) return false;
    if (req.needs_gpu && !host_->gpu()) return false;
    return host_->cores() >= req.min_cores;
  }

 private:
  friend class Overlay;
  Overlay& overlay_;
  sim::Host* host_;
  std::set<std::string> view_;
  bool busy_ = false;
};

/// The Zorilla P2P system (paper §3: "can turn any collection of machines
/// into a cluster-like system in minutes"). Membership spreads by gossip;
/// jobs are placed by flooding a resource request across the overlay.
class Overlay {
 public:
  Overlay(sim::Network& net, std::uint64_t seed) : net_(net), rng_(seed) {}

  /// Start a node. It initially knows itself and (optionally) one bootstrap
  /// peer — the usual deployment story.
  ZorillaNode& add_node(sim::Host& host, ZorillaNode* bootstrap = nullptr);

  ZorillaNode* node_on(const std::string& host_name);
  std::size_t node_count() const noexcept { return nodes_.size(); }
  /// All nodes in creation order.
  std::vector<ZorillaNode*> all_nodes();

  /// One synchronous gossip round: every node exchanges views with one
  /// random peer from its view. Traffic is charged per exchange. Returns
  /// the number of view entries learned across the system this round.
  int gossip_round();

  /// Gossip until every node knows every other (or `max_rounds` passes);
  /// returns the number of rounds it took. The E10/discovery tests assert
  /// this converges in O(log n) rounds.
  int gossip_until_converged(int max_rounds = 64);

  bool converged() const;

  /// Flood scheduling: breadth-first search over overlay edges from
  /// `origin`, collecting nodes that match. Deterministic: candidates are
  /// ordered by (hop distance, name). Charges a control message per edge
  /// visited. Returns up to `count` nodes, marked busy.
  std::vector<ZorillaNode*> discover(ZorillaNode& origin, int count,
                                     const Requirements& req);

  sim::Network& network() noexcept { return net_; }

 private:
  sim::Network& net_;
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<ZorillaNode>> nodes_;
  std::vector<std::string> order_;
};

/// GAT adapter that places jobs via Zorilla flood scheduling — the path the
/// broker falls back to when classic middleware cannot reach a resource.
class ZorillaAdapter : public gat::Adapter {
 public:
  explicit ZorillaAdapter(Overlay& overlay) : overlay_(overlay) {}

  std::string name() const override { return "zorilla"; }
  bool supports(const gat::Resource& resource) const override {
    return resource.middleware == "zorilla";
  }
  void submit(std::shared_ptr<gat::Job> job, const gat::JobDescription& desc,
              gat::Resource& resource) override;

 private:
  Overlay& overlay_;
};

/// Automatic resource discovery (paper §4.3 requirement 5 / §7 future
/// work): given worker requirements, pick a suitable node from the overlay
/// view; used by the AMUSE fault policy to find replacement resources.
class ResourceSelector {
 public:
  explicit ResourceSelector(Overlay& overlay) : overlay_(overlay) {}

  /// Best matching node (most cores, GPU preferred when requested), or
  /// nullptr. Does not mark the node busy.
  ZorillaNode* select(const Requirements& req,
                      const std::set<std::string>& exclude = {});

 private:
  Overlay& overlay_;
};

}  // namespace jungle::zorilla
