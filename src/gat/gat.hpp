#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "smartsockets/smartsockets.hpp"

namespace jungle::gat {

class Job;
class Broker;
struct Resource;

/// The nodes a job was given, plus where it runs. The job body is an in-sim
/// "executable": a callable that receives its allocation (an MPI worker
/// builds an MpiWorld over `hosts`).
struct JobContext {
  std::vector<sim::Host*> hosts;
  Resource* resource = nullptr;
  Job* job = nullptr;
};

/// What to run and what it needs (JavaGAT JobDescription analog).
struct JobDescription {
  std::string name;
  int node_count = 1;
  bool needs_gpu = false;
  /// Input files copied from the client to the resource before the job
  /// starts (paper §4.3: "input and output files should automatically be
  /// copied to where they are needed").
  double stage_in_bytes = 0.0;
  std::function<void(JobContext&)> main;
};

/// JavaGAT job state machine (subset).
enum class JobState { initial, preStaging, scheduled, running, stopped, error };
const char* job_state_name(JobState state) noexcept;

/// Handle to a submitted job. State transitions fire listener callbacks
/// (JavaGAT metrics) and wake blocking waiters.
class Job {
 public:
  explicit Job(sim::Simulation& sim)
      : sim_(sim), state_changed_(sim) {}

  JobState state() const noexcept { return state_; }
  const std::string& error_message() const noexcept { return error_; }
  const std::string& adapter() const noexcept { return adapter_; }
  const std::vector<sim::Host*>& hosts() const noexcept { return hosts_; }

  void on_state(std::function<void(JobState)> listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Block until the job reaches stopped or error.
  JobState wait_until_terminal();
  /// Block until the job starts running (or fails first).
  JobState wait_until_running();

  /// Ask the middleware to kill the job.
  void cancel();

  // -- adapter-side API --
  void set_state(JobState state, const std::string& error = "");
  void set_adapter(std::string name) { adapter_ = std::move(name); }
  void set_allocation(std::vector<sim::Host*> hosts, sim::ProcessId main_pid);
  void set_release(std::function<void()> release) {
    release_ = std::move(release);
  }

 private:
  sim::Simulation& sim_;
  JobState state_ = JobState::initial;
  std::string error_;
  std::string adapter_;
  std::vector<sim::Host*> hosts_;
  sim::ProcessId main_pid_ = 0;
  bool has_main_ = false;
  std::function<void()> release_;
  std::vector<std::function<void(JobState)>> listeners_;
  sim::Signal state_changed_;
};

/// Shared queue of a cluster: jobs wait FIFO for free nodes, mirroring PBS
/// and SGE behaviour closely enough for deployment experiments.
class ClusterQueue {
 public:
  explicit ClusterQueue(sim::Simulation& sim) : node_freed_(sim) {}

  /// Also hooks each node's crash notification: a crashed node leaves the
  /// busy set (its job died with it) and waiters re-check feasibility.
  void set_nodes(std::vector<sim::Host*> nodes);

  /// Export queue depth as gauges gat.queue.<name>.{busy,total} (kept
  /// current on every acquire/release/crash).
  void set_meter(std::string name) { meter_ = std::move(name); }

  /// Block until `count` nodes (optionally GPU nodes) are free, then take
  /// them. Throws GatError if the request can never be satisfied — nodes
  /// that are down don't count, including ones that crash while we queue.
  std::vector<sim::Host*> acquire(int count, bool needs_gpu);
  void release(const std::vector<sim::Host*>& taken);

  int total_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  int busy_nodes() const noexcept { return static_cast<int>(busy_.size()); }

 private:
  std::vector<sim::Host*> free_matching(int count, bool needs_gpu) const;
  void update_gauges() const;

  std::vector<sim::Host*> nodes_;
  std::vector<sim::Host*> busy_;
  sim::Signal node_freed_;
  std::string meter_;
};

/// A compute resource as described in the deployment configuration file
/// (paper §5: "hostname and type of middleware for each resource").
struct Resource {
  std::string name;
  std::string middleware;  // local | ssh | sge | pbs | globus | zorilla
  sim::Host* frontend = nullptr;
  std::vector<sim::Host*> nodes;  // compute nodes; empty => frontend only
  double queue_base_delay = 0.0;  // scheduler decision latency, seconds
  std::string gatekeeper_cert;    // globus: credential the client must hold
  std::shared_ptr<ClusterQueue> queue;  // created by make_cluster helpers

  /// Nodes if present, else the frontend.
  std::vector<sim::Host*> compute_hosts() const {
    return nodes.empty() ? std::vector<sim::Host*>{frontend} : nodes;
  }
};

/// Middleware adapter interface. JavaGAT's key property — "automatically
/// select the appropriate adapter" — is the Broker's job: it walks its
/// adapter list and uses the first one that both supports the resource and
/// succeeds at submission.
class Adapter {
 public:
  virtual ~Adapter() = default;
  virtual std::string name() const = 0;
  virtual bool supports(const Resource& resource) const = 0;
  /// Throws GatError on failure (broker then tries the next adapter).
  virtual void submit(std::shared_ptr<Job> job, const JobDescription& desc,
                      Resource& resource) = 0;

  /// Set by Broker::register_adapter; adapters never outlive their broker.
  void attach(Broker& broker) noexcept { broker_ = &broker; }

 protected:
  Broker& broker() const {
    if (broker_ == nullptr) throw GatError("adapter used before registration");
    return *broker_;
  }

 private:
  Broker* broker_ = nullptr;
};

/// Client context: the machine submissions originate from, credentials, and
/// the hub overlay (ssh-like adapters need the client to reach frontends).
class Broker {
 public:
  Broker(sim::Network& net, smartsockets::SmartSockets& sockets,
         sim::Host& client);
  // Registered adapters point back at this broker; pin the address.
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Adds the standard adapter set (local, ssh, sge, pbs, globus).
  void register_default_adapters();
  void register_adapter(std::unique_ptr<Adapter> adapter);

  std::shared_ptr<Job> submit(const JobDescription& desc, Resource& resource);

  void add_credential(const std::string& cert) {
    credentials_.push_back(cert);
  }
  bool has_credential(const std::string& cert) const;

  /// Adapter names tried during the last submit, in order (tests/monitoring).
  const std::vector<std::string>& last_adapter_trace() const noexcept {
    return trace_;
  }

  sim::Network& network() noexcept { return net_; }
  smartsockets::SmartSockets& sockets() noexcept { return sockets_; }
  sim::Host& client() noexcept { return client_; }

 private:
  sim::Network& net_;
  smartsockets::SmartSockets& sockets_;
  sim::Host& client_;
  std::vector<std::unique_ptr<Adapter>> adapters_;
  std::vector<std::string> credentials_;
  std::vector<std::string> trace_;
};

/// File staging service (JavaGAT file interface): blocking copy that charges
/// the network with TrafficClass::file.
class FileService {
 public:
  explicit FileService(sim::Network& net) : net_(net) {}

  /// Blocking transfer; returns the virtual seconds it took.
  double copy(sim::Host& from, sim::Host& to, double bytes);

 private:
  sim::Network& net_;
};

}  // namespace jungle::gat
