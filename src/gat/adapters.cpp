#include "gat/adapters.hpp"

#include "util/logging.hpp"

namespace jungle::gat {

namespace {
constexpr double kSshHandshake = 0.3;      // seconds
constexpr double kGatekeeperDelay = 2.0;   // globus certificate dance
}  // namespace

void run_allocated_job(Broker& broker, std::shared_ptr<Job> job,
                       const JobDescription& desc, Resource& resource,
                       double submit_delay) {
  // The submission itself happens asynchronously on the resource's
  // front-end: the submit() call returns once the description is handed
  // over, like a real qsub.
  sim::Host* frontend = resource.frontend;
  if (frontend == nullptr) throw GatError("resource has no frontend");
  if (!frontend->is_up()) throw GatError("frontend is down");
  if (desc.node_count > static_cast<int>(resource.compute_hosts().size())) {
    throw GatError("resource " + resource.name + " has only " +
                   std::to_string(resource.compute_hosts().size()) +
                   " nodes");
  }
  if (desc.needs_gpu) {
    bool any_gpu = false;
    for (sim::Host* node : resource.compute_hosts()) {
      if (node->gpu()) any_gpu = true;
    }
    if (!any_gpu) throw GatError("resource " + resource.name + " has no GPU");
  }

  // The submission pipeline runs on the front-end: if that machine dies
  // before the job is handed to a compute node, nothing is left to ever
  // move the state — error the job so waiters see the loss.
  frontend->on_crash([job, frontend_name = frontend->name()] {
    if (job->state() == JobState::running) return;  // already off-frontend
    job->set_state(JobState::error,
                   "frontend " + frontend_name + " went down during submit");
  });

  frontend->spawn("gat-submit:" + desc.name, [&broker, job, desc, &resource,
                                              submit_delay] {
    sim::Simulation& sim = broker.network().simulation();
    try {
      // Stage input files from the client to the front-end.
      if (desc.stage_in_bytes > 0) {
        job->set_state(JobState::preStaging);
        FileService files(broker.network());
        files.copy(broker.client(), *resource.frontend, desc.stage_in_bytes);
      }
      job->set_state(JobState::scheduled);
      sim.sleep(submit_delay);

      std::vector<sim::Host*> allocated;
      if (resource.queue) {
        allocated = resource.queue->acquire(desc.node_count, desc.needs_gpu);
      } else {
        allocated = resource.compute_hosts();
        allocated.resize(desc.node_count);
      }
      if (job->state() == JobState::stopped ||
          job->state() == JobState::error) {
        // Cancelled while queued: hand the nodes straight back.
        if (resource.queue) resource.queue->release(allocated);
        return;
      }
      auto context = std::make_shared<JobContext>();
      context->hosts = allocated;
      context->resource = &resource;
      context->job = job.get();

      auto release = [&resource, allocated] {
        if (resource.queue) resource.queue->release(allocated);
      };
      job->set_release(release);

      sim::ProcessId main_pid = allocated.front()->spawn(
          "job:" + desc.name, [job, desc, context, release] {
            try {
              desc.main(*context);
              release();
              job->set_state(JobState::stopped);
            } catch (const Error& failure) {
              release();
              job->set_state(JobState::error, failure.what());
            } catch (const sim::ProcessKilled&) {
              // Process-level fault injection: the job process was killed
              // while its node stayed up. Free the queue allocation and
              // flag the job, then keep unwinding — otherwise the slot
              // leaks and the job reads "running" forever.
              release();
              job->set_state(JobState::error, "job process was killed");
              throw;
            }
          });
      job->set_allocation(allocated, main_pid);
      job->set_state(JobState::running);
      // A node crash kills the job's processes outright — the main body
      // never gets to run its error path, so report the loss from here.
      // (set_state is a no-op once the job is terminal.)
      for (sim::Host* node : allocated) {
        node->on_crash([job, release, node_name = node->name()] {
          if (job->state() != JobState::running) return;
          release();
          job->set_state(JobState::error,
                         "node " + node_name + " went down");
        });
      }
    } catch (const Error& failure) {
      job->set_state(JobState::error, failure.what());
    }
  });
}

void LocalAdapter::submit(std::shared_ptr<Job> job, const JobDescription& desc,
                          Resource& resource) {
  if (resource.frontend != &broker().client()) {
    throw GatError("local adapter only runs on the client machine");
  }
  run_allocated_job(broker(), std::move(job), desc, resource, 0.0);
}

void SshAdapter::submit(std::shared_ptr<Job> job, const JobDescription& desc,
                        Resource& resource) {
  sim::Network& net = broker().network();
  if (resource.frontend == nullptr) throw GatError("no frontend host");
  if (!net.can_ssh(broker().client(), *resource.frontend)) {
    throw GatError("ssh: cannot reach " + resource.frontend->name() +
                   " from " + broker().client().name());
  }
  double delay =
      net.rtt(broker().client(), *resource.frontend) * 1.5 + kSshHandshake;
  run_allocated_job(broker(), std::move(job), desc, resource, delay);
}

void BatchQueueAdapter::submit(std::shared_ptr<Job> job,
                               const JobDescription& desc,
                               Resource& resource) {
  sim::Network& net = broker().network();
  if (resource.frontend == nullptr) throw GatError("no frontend host");
  if (!net.can_ssh(broker().client(), *resource.frontend)) {
    throw GatError(middleware_ + ": cannot reach " +
                   resource.frontend->name());
  }
  if (!resource.queue) {
    throw GatError(middleware_ + ": resource has no batch queue");
  }
  double queue_delay = resource.queue_base_delay > 0
                           ? resource.queue_base_delay
                           : default_queue_delay_;
  double delay = net.rtt(broker().client(), *resource.frontend) * 1.5 +
                 kSshHandshake + queue_delay;
  run_allocated_job(broker(), std::move(job), desc, resource, delay);
}

void GlobusAdapter::submit(std::shared_ptr<Job> job,
                           const JobDescription& desc, Resource& resource) {
  sim::Network& net = broker().network();
  if (resource.frontend == nullptr) throw GatError("no frontend host");
  if (!net.can_ssh(broker().client(), *resource.frontend)) {
    throw GatError("globus: cannot reach gatekeeper on " +
                   resource.frontend->name());
  }
  if (!resource.gatekeeper_cert.empty() &&
      !broker().has_credential(resource.gatekeeper_cert)) {
    throw GatError("globus: missing credential '" + resource.gatekeeper_cert +
                   "'");
  }
  double queue_delay =
      resource.queue_base_delay > 0 ? resource.queue_base_delay : 4.0;
  double delay = net.rtt(broker().client(), *resource.frontend) * 2 +
                 kGatekeeperDelay + queue_delay;
  run_allocated_job(broker(), std::move(job), desc, resource, delay);
}

}  // namespace jungle::gat
