#include "gat/gat.hpp"

#include <algorithm>

#include "gat/adapters.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace jungle::gat {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::initial: return "INITIAL";
    case JobState::preStaging: return "PRE_STAGING";
    case JobState::scheduled: return "SCHEDULED";
    case JobState::running: return "RUNNING";
    case JobState::stopped: return "STOPPED";
    case JobState::error: return "ERROR";
  }
  return "?";
}

JobState Job::wait_until_terminal() {
  while (state_ != JobState::stopped && state_ != JobState::error) {
    state_changed_.wait();
  }
  return state_;
}

JobState Job::wait_until_running() {
  while (state_ != JobState::running && state_ != JobState::stopped &&
         state_ != JobState::error) {
    state_changed_.wait();
  }
  return state_;
}

void Job::cancel() {
  if (state_ == JobState::stopped || state_ == JobState::error) return;
  if (has_main_) sim_.kill(main_pid_);
  if (release_) {
    release_();
    release_ = nullptr;
  }
  set_state(JobState::stopped, "cancelled");
}

void Job::set_state(JobState state, const std::string& error) {
  if (state_ == JobState::stopped || state_ == JobState::error) return;
  state_ = state;
  if (!error.empty()) error_ = error;
  for (auto& listener : listeners_) listener(state);
  state_changed_.notify_all();
}

void Job::set_allocation(std::vector<sim::Host*> hosts,
                         sim::ProcessId main_pid) {
  hosts_ = std::move(hosts);
  main_pid_ = main_pid;
  has_main_ = true;
}

std::vector<sim::Host*> ClusterQueue::free_matching(int count,
                                                    bool needs_gpu) const {
  // CPU jobs take GPU nodes last: handing the only GPU node to a CPU job
  // would starve a queued GPU job for the whole run (real schedulers
  // reserve accelerator nodes the same way).
  std::vector<sim::Host*> matching;
  auto scan = [&](bool gpu_nodes) {
    for (sim::Host* node : nodes_) {
      if (static_cast<int>(matching.size()) == count) return;
      if (!node->is_up()) continue;
      if (static_cast<bool>(node->gpu()) != gpu_nodes) continue;
      if (needs_gpu && !node->gpu()) continue;
      if (std::find(busy_.begin(), busy_.end(), node) != busy_.end()) continue;
      matching.push_back(node);
    }
  };
  if (!needs_gpu) scan(false);
  scan(true);
  return matching;
}

void ClusterQueue::set_nodes(std::vector<sim::Host*> nodes) {
  nodes_ = std::move(nodes);
  // A crashing node frees its queue slot (its job is dead anyway) and wakes
  // waiters, whose capability re-check below turns "waiting for a node that
  // will never come back" into a queue error instead of a silent hang.
  for (sim::Host* node : nodes_) {
    node->on_crash([this, node] {
      busy_.erase(std::remove(busy_.begin(), busy_.end(), node), busy_.end());
      update_gauges();
      node_freed_.notify_all();
    });
  }
  update_gauges();
}

void ClusterQueue::update_gauges() const {
  if (meter_.empty()) return;
  obs::metrics::gauge("gat.queue." + meter_ + ".busy")
      .set(static_cast<double>(busy_nodes()));
  obs::metrics::gauge("gat.queue." + meter_ + ".total")
      .set(static_cast<double>(total_nodes()));
}

std::vector<sim::Host*> ClusterQueue::acquire(int count, bool needs_gpu) {
  while (true) {
    // Fail fast when the cluster can never satisfy the request — counting
    // only nodes that are still up, and re-counting after every wait (the
    // last GPU node may have crashed while we were queued).
    int capable = 0;
    for (sim::Host* node : nodes_) {
      if (node->is_up() && (!needs_gpu || node->gpu())) ++capable;
    }
    if (capable < count) {
      throw GatError("cluster cannot satisfy request for " +
                     std::to_string(count) +
                     (needs_gpu ? " GPU nodes" : " nodes"));
    }
    auto taken = free_matching(count, needs_gpu);
    if (static_cast<int>(taken.size()) == count) {
      busy_.insert(busy_.end(), taken.begin(), taken.end());
      update_gauges();
      return taken;
    }
    node_freed_.wait();
  }
}

void ClusterQueue::release(const std::vector<sim::Host*>& taken) {
  for (sim::Host* node : taken) {
    busy_.erase(std::remove(busy_.begin(), busy_.end(), node), busy_.end());
  }
  update_gauges();
  node_freed_.notify_all();
}

Broker::Broker(sim::Network& net, smartsockets::SmartSockets& sockets,
               sim::Host& client)
    : net_(net), sockets_(sockets), client_(client) {}

void Broker::register_default_adapters() {
  register_adapter(std::make_unique<LocalAdapter>());
  register_adapter(std::make_unique<SshAdapter>());
  register_adapter(std::make_unique<BatchQueueAdapter>("sge", 2.0));
  register_adapter(std::make_unique<BatchQueueAdapter>("pbs", 4.0));
  register_adapter(std::make_unique<GlobusAdapter>());
}

void Broker::register_adapter(std::unique_ptr<Adapter> adapter) {
  adapter->attach(*this);
  adapters_.push_back(std::move(adapter));
}

bool Broker::has_credential(const std::string& cert) const {
  return std::find(credentials_.begin(), credentials_.end(), cert) !=
         credentials_.end();
}

std::shared_ptr<Job> Broker::submit(const JobDescription& desc,
                                    Resource& resource) {
  trace_.clear();
  std::string failures;
  for (auto& adapter : adapters_) {
    if (!adapter->supports(resource)) continue;
    trace_.push_back(adapter->name());
    auto job = std::make_shared<Job>(net_.simulation());
    job->set_adapter(adapter->name());
    try {
      adapter->submit(job, desc, resource);
      log::info("gat") << "job " << desc.name << " submitted to "
                       << resource.name << " via " << adapter->name();
      return job;
    } catch (const GatError& failure) {
      failures += std::string(" [") + adapter->name() + ": " +
                  failure.what() + "]";
    }
  }
  throw GatError("no adapter could submit " + desc.name + " to " +
                 resource.name + (failures.empty() ? " (none support it)"
                                                   : failures));
}

double FileService::copy(sim::Host& from, sim::Host& to, double bytes) {
  sim::Simulation& sim = net_.simulation();
  double start = sim.now();
  sim::Signal done(sim);
  bool delivered = false;
  // Ride out transient outages, but give up on a route that stays dark —
  // an unreachable stage-in must surface as a job error, not a hang.
  constexpr int kMaxRetries = 20;
  constexpr double kRetryDelay = 0.5;
  int retries = 0;
  while (!delivered) {
    auto arrival =
        net_.send(from, to, bytes, sim::TrafficClass::file, [&] {
          delivered = true;
          done.notify_all();
        });
    if (!arrival) {
      if (++retries > kMaxRetries) {
        throw GatError("file staging " + from.name() + " -> " + to.name() +
                       " failed: route down for " +
                       std::to_string(kMaxRetries * kRetryDelay) + " s");
      }
      sim.sleep(kRetryDelay);  // link down: retry the copy
      continue;
    }
    while (!delivered) done.wait();
  }
  return sim.now() - start;
}

}  // namespace jungle::gat
