#pragma once

#include "gat/gat.hpp"

namespace jungle::gat {

/// Runs the job immediately on the client machine itself.
class LocalAdapter : public Adapter {
 public:
  std::string name() const override { return "local"; }
  bool supports(const Resource& resource) const override {
    return resource.middleware == "local";
  }
  void submit(std::shared_ptr<Job> job, const JobDescription& desc,
              Resource& resource) override;
};

/// Starts the job on the resource's front-end over an ssh-like channel.
/// Requires a *direct outbound* route from the client to the front-end
/// (ssh cannot use the hub overlay).
class SshAdapter : public Adapter {
 public:
  std::string name() const override { return "ssh"; }
  bool supports(const Resource& resource) const override {
    return resource.middleware == "ssh";
  }
  void submit(std::shared_ptr<Job> job, const JobDescription& desc,
              Resource& resource) override;
};

/// Batch-queue adapters: submit over ssh to the front-end, then wait in the
/// cluster's FIFO queue for nodes. SGE and PBS differ only in their
/// middleware tag and default scheduler latency — exactly the "different
/// middleware interfaces" JavaGAT papers over.
class BatchQueueAdapter : public Adapter {
 public:
  BatchQueueAdapter(std::string middleware, double default_queue_delay)
      : middleware_(std::move(middleware)),
        default_queue_delay_(default_queue_delay) {}
  std::string name() const override { return middleware_; }
  bool supports(const Resource& resource) const override {
    return resource.middleware == middleware_;
  }
  void submit(std::shared_ptr<Job> job, const JobDescription& desc,
              Resource& resource) override;

 private:
  std::string middleware_;
  double default_queue_delay_;
};

/// Grid middleware: certificate handshake with a gatekeeper on the
/// front-end, then batch scheduling. Fails without the right credential.
class GlobusAdapter : public Adapter {
 public:
  std::string name() const override { return "globus"; }
  bool supports(const Resource& resource) const override {
    return resource.middleware == "globus";
  }
  void submit(std::shared_ptr<Job> job, const JobDescription& desc,
              Resource& resource) override;
};

/// Shared machinery: stage input, allocate via the cluster queue, spawn the
/// job main on the first allocated node, release on completion.
void run_allocated_job(Broker& broker, std::shared_ptr<Job> job,
                       const JobDescription& desc, Resource& resource,
                       double submit_delay);

}  // namespace jungle::gat
