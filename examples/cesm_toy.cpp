// The second 3MK domain of the paper (§4.2, Fig 4): a CESM-like coupled
// climate toy — atmosphere, ocean, land and sea-ice models exchanging
// boundary fields through a coupler, all as MPI jobs on one cluster. The
// models here are deliberately simple energy-balance toys; the point is the
// paper's observation that "the designs of AMUSE and CESM show a remarkable
// similarity": the same middleware (GAT job submission, in-sim MPI,
// simulated cluster) drives a second domain unchanged.
#include <cstdio>
#include <vector>

#include "gat/gat.hpp"
#include "mpi/mpi.hpp"
#include "sim/network.hpp"
#include "smartsockets/smartsockets.hpp"

using namespace jungle;

namespace {

/// One component model: a grid of cells relaxing towards a forcing, with
/// the coupler exchanging boundary temperatures every coupling step.
struct ComponentModel {
  std::string name;
  double forcing;        // equilibrium temperature driver (K)
  double inertia;        // relaxation time scale
  std::vector<double> cells;

  explicit ComponentModel(std::string model_name, double f, double tau,
                          std::size_t n)
      : name(std::move(model_name)), forcing(f), inertia(tau), cells(n, f) {}

  void step(double coupled_boundary, double dt) {
    for (double& cell : cells) {
      cell += dt / inertia * (forcing - cell) +
              dt * 0.1 * (coupled_boundary - cell);
    }
  }

  double boundary() const {
    double sum = 0;
    for (double cell : cells) sum += cell;
    return sum / static_cast<double>(cells.size());
  }
};

}  // namespace

int main() {
  sim::Simulation simulation;
  sim::Network net(simulation);
  net.add_site("supercomputer", 2e-6, 32e9 / 8);
  std::vector<sim::Host*> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(&net.add_host("node" + std::to_string(i),
                                  "supercomputer", 16, 10));
  }

  // CESM layout: the coupler and the four models are ranks of one MPI job,
  // partitioned over the nodes (paper: "the compute nodes can either be
  // partitioned, each running (part of) one model, ...").
  mpi::MpiWorld world(net, nodes, 5);  // rank 0 = CPL, 1..4 = models
  const char* names[] = {"CPL", "atmosphere", "ocean", "land", "sea-ice"};
  std::printf("CESM-toy: 5 components as one MPI job on 8 nodes\n");

  world.launch("cesm", [&](mpi::Comm& comm) {
    const double dt = 1.0;  // one coupling interval
    const int steps = 48;
    if (comm.rank() == 0) {
      // The parallel coupler: gather boundary fields, average, broadcast.
      for (int s = 0; s < steps; ++s) {
        std::vector<double> boundaries(5, 0.0);
        for (int model = 1; model <= 4; ++model) {
          auto value = comm.recv_doubles(model, 1);
          boundaries[model] = value[0];
        }
        double coupled = (boundaries[1] + boundaries[2] + boundaries[3] +
                          boundaries[4]) /
                         4.0;
        for (int model = 1; model <= 4; ++model) {
          comm.send_doubles(model, 2, std::vector<double>{coupled});
        }
        if (s % 12 == 0) {
          std::printf("  coupler step %2d: atm=%.2fK ocn=%.2fK lnd=%.2fK "
                      "ice=%.2fK -> coupled=%.2fK\n",
                      s, boundaries[1], boundaries[2], boundaries[3],
                      boundaries[4], coupled);
        }
      }
    } else {
      double forcing[] = {0, 288.0, 290.0, 285.0, 260.0};
      double tau[] = {0, 3.0, 40.0, 8.0, 15.0};
      ComponentModel model(names[comm.rank()], forcing[comm.rank()],
                           tau[comm.rank()], 64 * 64);
      for (int s = 0; s < steps; ++s) {
        comm.send_doubles(0, 1, std::vector<double>{model.boundary()});
        auto coupled = comm.recv_doubles(0, 2);
        // Cost model: a 64x64 column model, ~2 kflop per cell per step.
        comm.host().compute(64.0 * 64 * 2000, sim::DeviceKind::cpu, 8);
        model.step(coupled[0], dt);
      }
      std::printf("  %-10s finished at %.2f K (forcing %.1f K)\n",
                  model.name.c_str(), model.boundary(),
                  model.forcing);
    }
  });
  simulation.spawn("driver", [&] { world.wait(); });
  simulation.run();
  std::printf("coupled climate toy done; virtual time %.3f s, MPI payload "
              "%.1f KB\n",
              simulation.now(), world.bytes_sent() / 1e3);
  simulation.shutdown();
  return 0;
}
