// The SC11 demonstration (paper §6.1, Figs 8-11): the coupler runs on a
// laptop in Seattle; all four models run on four sites in the Netherlands,
// connected by a transatlantic 1G lightpath. Prints the text analog of the
// IbisDeploy GUI: job grid, overlay map with tunnels, and the per-link
// traffic with IPL and MPI flows separated (the blue/orange edges of
// Fig 11).
#include <cstdio>

#include "amuse/scenario.hpp"

using namespace jungle::amuse;

int main() {
  scenario::Options options;
  options.n_stars = 400;
  options.n_gas = 1600;
  options.iterations = 3;
  options.dt = 1.0 / 16.0;

  std::printf("=== SC11 demo: coupler@Seattle, models@NL ===\n\n");
  auto atlantic = scenario::run_scenario(scenario::Kind::sc11, options);
  std::printf("%s\n", atlantic.dashboard.c_str());
  std::printf("iteration time across the Atlantic: %.3f virtual s\n",
              atlantic.seconds_per_iteration);
  std::printf("transatlantic traffic: %.2f MB\n\n", atlantic.wan_bytes / 1e6);

  auto local = scenario::run_scenario(scenario::Kind::jungle, options);
  std::printf("same placement with the coupler at VU: %.3f virtual s/iter\n",
              local.seconds_per_iteration);
  std::printf("worst-case overhead: %.2fx -> the demo works, as at SC11\n",
              atlantic.seconds_per_iteration / local.seconds_per_iteration);
  return 0;
}
