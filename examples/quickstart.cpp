// Quickstart: the smallest useful distributed-AMUSE run, written against
// the composable Experiment API. Declare a model graph (here: one Plummer
// cluster, gravity only), let the placement scheduler map it onto the
// built-in jungle testbed, run, and read the energies back — then grow the
// same spec into a multi-model experiment by adding models and couplings
// (or write it as an INI: see examples/experiments/).
#include <cmath>
#include <cstdio>

#include "amuse/experiment.hpp"
#include "amuse/units.hpp"

using namespace jungle;
using namespace jungle::amuse;
using namespace jungle::amuse::experiment;

int main() {
  // 1. Declare the experiment: one gravity model, 1024 stars, Plummer IC.
  //    No `place =` pin, so the scheduler picks the machine (the desktop's
  //    GPU on the built-in testbed — or a remote Tesla if it were faster).
  ExperimentSpec spec;
  spec.name = "quickstart";
  spec.dt = 1.0 / 4.0;
  spec.iterations = 4;  // 4 * dt = one N-body time unit

  ModelSpec cluster;
  cluster.name = "cluster";
  cluster.role = sched::Role::gravity;
  cluster.n = 1024;
  cluster.ic = "plummer";
  spec.models = {cluster};

  // 2. Validate + place + deploy + run. The testbed is the paper's jungle
  //    (Figs 9/12); an INI topology works the same via run_experiment_config.
  Result result = run_experiment(spec);

  // 3. Read the results back in AMUSE-style units: a 1000 MSun, 1 pc
  //    cluster.
  NBodyConverter convert(Quantity(1000.0, units::msun),
                         Quantity(1.0, units::parsec));
  const ModelResult& model = result.models.at(0);
  double energy = model.kinetic + model.potential;
  std::printf("experiment '%s' ran %d bridge iterations\n",
              result.experiment.c_str(), result.iterations);
  std::printf("placement: %s\n", result.placement.c_str());
  std::printf("t=1  E=%.6f (nbody) = %.4e J, virial ratio %.3f\n", energy,
              convert.to_si(energy, units::j).raw(),
              -2.0 * model.kinetic / model.potential);
  std::printf("that is %.3f Myr of cluster evolution\n",
              convert.time_scale().value_in(units::myr));
  std::printf("\n%s\n", result.dashboard.c_str());
  std::printf("virtual wall time per iteration: %.3f s\n",
              result.seconds_per_iteration);
  return 0;
}
