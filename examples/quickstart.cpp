// Quickstart: the smallest useful distributed-AMUSE run. Builds a two-site
// jungle (your desktop + a remote GPU cluster), starts the Ibis daemon,
// deploys a phiGRAPE worker on the cluster through the daemon, and evolves
// a Plummer cluster while checking energy conservation — the four usage
// steps of paper §5 in ~80 lines.
#include <cstdio>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"
#include "amuse/units.hpp"

using namespace jungle;
using namespace jungle::amuse;

int main() {
  // 1. Describe the jungle: the local machine and one remote GPU cluster.
  sim::Simulation simulation;
  sim::Network net(simulation);
  net.add_site("home");
  net.add_site("cluster");
  sim::Host& desktop = net.add_host("desktop", "home", 4, 10.0);
  sim::Host& frontend = net.add_host("fs0", "cluster", 8, 10.0);
  sim::Host& gpu_node = net.add_host("gpu0", "cluster", 8, 10.0);
  gpu_node.set_gpu(sim::GpuSpec{"tesla-c2050", 500.0});
  net.add_link("home", "cluster", 1e-3, 1e9 / 8);

  // 2. Describe the resource ("hostname and type of middleware").
  smartsockets::SmartSockets sockets(net);
  deploy::Deployer deployer(net, sockets, desktop);
  gat::Resource cluster;
  cluster.name = "gpu-cluster";
  cluster.middleware = "sge";
  cluster.frontend = &frontend;
  cluster.nodes = {&gpu_node};
  cluster.queue = std::make_shared<gat::ClusterQueue>(simulation);
  cluster.queue->set_nodes(cluster.nodes);
  deployer.add_resource(cluster);

  // 3. Start the Ibis daemon on the local machine.
  IbisDaemon daemon(deployer, net, sockets, desktop);

  // 4. The simulation script: ask for a worker with the 'ibis' channel.
  desktop.spawn("script", [&] {
    DaemonClient client(sockets, desktop);
    WorkerSpec spec;
    spec.code = "phigrape-gpu";
    GravityClient gravity(client.start_worker(spec, "gpu-cluster"));

    // AMUSE-style units: a 1000 MSun, 1 pc cluster.
    NBodyConverter convert(Quantity(1000.0, units::msun),
                           Quantity(1.0, units::parsec));
    util::Rng rng(42);
    auto model = ic::plummer_sphere(1024, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);

    auto [k0, p0] = gravity.energies();
    std::printf("t=0      E=%.6f (nbody) = %.4e J\n", k0 + p0,
                convert.to_si(k0 + p0, units::j).raw());

    gravity.evolve(1.0);  // one N-body time unit

    auto [k1, p1] = gravity.energies();
    std::printf("t=1      E=%.6f, drift %.2e, virial ratio %.3f\n", k1 + p1,
                std::abs((k1 + p1) - (k0 + p0)) / std::abs(k0 + p0),
                -2.0 * k1 / p1);
    std::printf("that is %.3f Myr of cluster evolution, computed on %s\n",
                convert.time_scale().value_in(units::myr),
                gpu_node.name().c_str());
    gravity.close();
  });
  simulation.run();

  std::printf("\n%s\n", deployer.dashboard().c_str());
  std::printf("virtual wall time of the whole session: %.3f s\n",
              simulation.now());
  simulation.shutdown();
  return 0;
}
