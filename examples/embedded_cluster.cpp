// The paper's evaluation workload (§6, [11]): the evolution of an embedded
// star cluster — young stars inside their natal gas cloud, coupled through
// the Fig-7 bridge, with stellar evolution driving winds and supernovae
// that eventually expel the gas (the four stages of Fig 6).
//
//   embedded_cluster [scenario]
//     scenario: local-cpu | local-gpu | remote-gpu | jungle (default)
#include <cstdio>
#include <cstring>

#include "amuse/bridge.hpp"
#include "amuse/daemon.hpp"
#include "amuse/diagnostics.hpp"
#include "amuse/ic.hpp"
#include "amuse/scenario.hpp"
#include "util/parallel.hpp"

using namespace jungle;
using namespace jungle::amuse;

int main(int argc, char** argv) {
  scenario::Kind kind = scenario::Kind::jungle;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "local-cpu")) kind = scenario::Kind::local_cpu;
    if (!std::strcmp(argv[1], "local-gpu")) kind = scenario::Kind::local_gpu;
    if (!std::strcmp(argv[1], "remote-gpu")) {
      kind = scenario::Kind::remote_gpu;
    }
    if (!std::strcmp(argv[1], "jungle")) kind = scenario::Kind::jungle;
  }

  scenario::Options options;
  options.n_stars = 300;   // small enough to run many iterations quickly
  options.n_gas = 1200;
  options.iterations = 8;
  options.dt = 1.0 / 16.0;
  options.se_every = 2;

  std::printf("embedded star cluster, %zu stars + %zu gas particles,\n"
              "placement: %s, %u kernel lanes (JUNGLE_THREADS)\n\n",
              options.n_stars, options.n_gas, scenario::kind_name(kind),
              util::ThreadPool::global().lanes());
  auto result = scenario::run_scenario(kind, options);

  std::printf("ran %d bridge iterations at %.3f virtual s/iteration\n",
              result.iterations, result.seconds_per_iteration);
  std::printf("WAN traffic: %.2f MB (%.2f MB of it IPL)\n",
              result.wan_bytes / 1e6, result.wan_ipl_bytes / 1e6);
  std::printf("bound gas fraction at the end: %.2f\n",
              result.bound_gas_fraction);
  std::printf("\n%s\n", result.dashboard.c_str());
  return 0;
}
