// Adaptive placement demo: let the scheduler map the four model kernels
// onto whatever jungle it is given, instead of a hand-coded table.
//
//   ./autoplace                 — the paper's four-site testbed (Fig 12)
//   ./autoplace topology.ini    — any deploy INI becomes a scenario
//
// The INI uses the deploy syntax ([site ...], [host ...], [link a b],
// [resource ...]) plus an optional [scenario] client=HOST section.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "amuse/scenario.hpp"

using namespace jungle;
using namespace jungle::amuse::scenario;

namespace {

void report(const Result& result) {
  std::printf("placement : %s\n", result.placement.c_str());
  std::printf("modeled   : %.3f s/iteration\n",
              result.modeled_seconds_per_iteration);
  std::printf("measured  : %.3f s/iteration (virtual)\n",
              result.seconds_per_iteration);
  std::printf("bound gas : %.3f\n", result.bound_gas_fraction);
  if (result.restarts > 0) {
    std::printf("restarts  : %d\n", result.restarts);
  }
  std::printf("\n%s\n", result.dashboard.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  options.n_stars = 500;
  options.n_gas = 4000;
  options.iterations = 2;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    Result result =
        run_scenario_config(util::Config::parse(text.str()), options);
    report(result);
    return 0;
  }

  // Built-in testbed: compare the scheduler's choice with the hard-coded
  // Fig-12 placement it is supposed to rediscover (or beat).
  {
    JungleTestbed bed;
    auto table = placement_for(bed, Kind::jungle, options);
    std::printf("fig-12 table: %s\n", table.describe().c_str());
    std::printf("   modeled  : %.3f s/iteration\n\n",
                table.modeled_seconds_per_iteration);
  }
  Result result = run_scenario(Kind::autoplace, options);
  report(result);
  return 0;
}
