// The paper's §4.3 requirement 5 / §7 future work, implemented: automatic
// discovery of suitable resources. A Zorilla P2P overlay gossips
// membership across a pile of unrelated machines; the resource selector
// then picks a GPU node for a gravity worker — and a replacement when that
// machine dies mid-run.
#include <cstdio>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"
#include "zorilla/zorilla.hpp"

using namespace jungle;
using namespace jungle::amuse;

int main() {
  sim::Simulation simulation;
  sim::Network net(simulation);
  smartsockets::SmartSockets sockets(net);
  net.add_site("internet", 20e-3, 100e6 / 8);
  sim::Host& laptop = net.add_host("laptop", "internet", 2, 5);

  // A pile of donated machines, only some of which carry GPUs.
  zorilla::Overlay overlay(net, 4242);
  auto& origin = overlay.add_node(laptop);
  for (int i = 0; i < 12; ++i) {
    sim::Host& host = net.add_host("peer" + std::to_string(i), "internet",
                                   2 + i % 6, 5 + i % 3);
    if (i % 4 == 0) host.set_gpu(sim::GpuSpec{"gtx580", 150});
    overlay.add_node(host, &origin);
  }
  int rounds = overlay.gossip_until_converged();
  std::printf("gossip converged in %d rounds; %zu peers known everywhere\n",
              rounds, overlay.node_count());

  zorilla::ResourceSelector selector(overlay);
  zorilla::Requirements needs_gpu{.needs_gpu = true, .min_cores = 2};

  laptop.spawn("script", [&] {
    zorilla::ZorillaNode* chosen = selector.select(needs_gpu);
    std::printf("selected %s (gpu=%s, %d cores) for the gravity worker\n",
                chosen->host().name().c_str(),
                chosen->host().gpu()->model.c_str(), chosen->host().cores());

    WorkerSpec spec;
    spec.code = "phigrape-gpu";
    GravityClient gravity(start_local_worker(sockets, net, laptop,
                                             chosen->host(), spec,
                                             ChannelKind::socket));
    util::Rng rng(7);
    auto model = ic::plummer_sphere(256, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    gravity.evolve(0.25);
    auto save = gravity.get_state();

    // The machine disappears (paper §5: "we cannot recover from this
    // fault" — here, we can).
    std::printf("crashing %s mid-run...\n", chosen->host().name().c_str());
    chosen->host().crash();
    try {
      gravity.evolve(0.5);
      gravity.get_state();
    } catch (const CodeError&) {
      zorilla::ZorillaNode* replacement =
          selector.select(needs_gpu, {chosen->host().name()});
      std::printf("worker died; selector found replacement %s\n",
                  replacement->host().name().c_str());
      GravityClient retry(start_local_worker(sockets, net, laptop,
                                             replacement->host(), spec,
                                             ChannelKind::socket));
      retry.add_particles(save.mass, save.position, save.velocity);
      retry.evolve(0.25);
      auto [k, p] = retry.energies();
      std::printf("restarted from checkpoint and continued: E=%.4f\n", k + p);
      retry.close();
    }
  });
  simulation.run();
  simulation.shutdown();
  return 0;
}
