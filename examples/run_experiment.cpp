// Run an experiment INI: one file declaring the jungle topology, the
// resources, and the model graph ([experiment] / [model ...] /
// [coupling ...]) — the composable replacement for the hard-coded
// scenario kinds. See examples/experiments/ for specs.
//
//   ./build/run_experiment examples/experiments/triple-plummer.ini
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "amuse/experiment.hpp"

using namespace jungle;
using namespace jungle::amuse::experiment;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s EXPERIMENT_INI\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  try {
    util::Config config = util::Config::parse(text.str());
    Result result = run_experiment_config(config);
    std::printf("%s\n", result.dashboard.c_str());
    std::printf("experiment '%s': %d iterations, %.3f virtual s/iteration, "
                "%.1f MB over WAN\n",
                result.experiment.c_str(), result.iterations,
                result.seconds_per_iteration, result.wan_bytes / 1e6);
    for (const ModelResult& model : result.models) {
      std::printf("  %-12s E = %.6f (kinetic %.6f, potential %.6f%s)\n",
                  model.name.c_str(),
                  model.kinetic + model.potential + model.thermal,
                  model.kinetic, model.potential,
                  model.role == sched::Role::hydro ? ", +thermal" : "");
    }
    if (result.bound_gas_fraction < 1.0) {
      std::printf("  bound gas fraction: %.3f\n", result.bound_gas_fraction);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "experiment failed: %s\n", error.what());
    return 1;
  }
  return 0;
}
