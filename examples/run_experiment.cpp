// Run an experiment INI: one file declaring the jungle topology, the
// resources, and the model graph ([experiment] / [model ...] /
// [coupling ...]) — the composable replacement for the hard-coded
// scenario kinds. See examples/experiments/ for specs.
//
//   ./build/run_experiment examples/experiments/triple-plummer.ini
//
// Pass --trace[=PATH] (or set JUNGLE_TRACE=PATH) to record every RPC,
// kernel and bridge phase as a Chrome trace-event file (load it in
// chrome://tracing or https://ui.perfetto.dev), plus a metrics dump
// (PATH with a -metrics.json suffix) holding the registry snapshot and
// the per-iteration log.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "amuse/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace jungle;
using namespace jungle::amuse::experiment;

namespace {

std::string metrics_path_for(const std::string& trace_path) {
  std::string base = trace_path;
  if (base.size() > 5 && base.rfind(".json") == base.size() - 5) {
    base.resize(base.size() - 5);
  }
  return base + "-metrics.json";
}

}  // namespace

int main(int argc, char** argv) {
  std::string ini_path;
  std::string trace_path;
  if (const char* env = std::getenv("JUNGLE_TRACE")) {
    trace_path = *env != '\0' ? env : "trace.json";
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace") {
      trace_path = "trace.json";
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (ini_path.empty()) {
      ini_path = arg;
    } else {
      ini_path.clear();
      break;
    }
  }
  if (ini_path.empty()) {
    std::fprintf(stderr, "usage: %s EXPERIMENT_INI [--trace[=PATH]]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(ini_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", ini_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  if (!trace_path.empty()) obs::trace::set_enabled(true);
  try {
    util::Config config = util::Config::parse(text.str());
    Result result = run_experiment_config(config);
    std::printf("%s\n", result.dashboard.c_str());
    std::printf("experiment '%s': %d iterations, %.3f virtual s/iteration, "
                "%.1f MB over WAN\n",
                result.experiment.c_str(), result.iterations,
                result.seconds_per_iteration, result.wan_bytes / 1e6);
    for (const ModelResult& model : result.models) {
      std::printf("  %-12s E = %.6f (kinetic %.6f, potential %.6f%s)\n",
                  model.name.c_str(),
                  model.kinetic + model.potential + model.thermal,
                  model.kinetic, model.potential,
                  model.role == sched::Role::hydro ? ", +thermal" : "");
    }
    if (result.bound_gas_fraction < 1.0) {
      std::printf("  bound gas fraction: %.3f\n", result.bound_gas_fraction);
    }
    if (!trace_path.empty()) {
      obs::trace::write_chrome_trace(trace_path);
      std::string metrics_path = metrics_path_for(trace_path);
      std::ofstream metrics(metrics_path);
      metrics << "{\"metrics\": " << obs::metrics::snapshot_json()
              << ",\n \"iterations\": "
              << amuse::diagnostics::iteration_json(result.iteration_log)
              << "}\n";
      std::printf("wrote %zu spans to %s, metrics to %s\n",
                  obs::trace::recorded(), trace_path.c_str(),
                  metrics_path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "experiment failed: %s\n", error.what());
    return 1;
  }
  return 0;
}
