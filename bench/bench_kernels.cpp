// E11 — §6.2 kernel claims: GPU variants of a kernel give the same physics
// dramatically faster; tree codes beat direct summation at scale. These are
// *real* wall-clock microbenchmarks of the kernels plus the virtual-cost
// ratios of the CPU/GPU device model. Writes BENCH_kernels.json — the
// SIMD-vs-scalar sweep CI gates against the committed reference
// (tools/check_kernels.py): the vector paths must beat the scalar
// references and stay inside the documented physics tolerance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "amuse/ic.hpp"
#include "kernels/bhtree.hpp"
#include "kernels/hermite.hpp"
#include "kernels/simd.hpp"
#include "kernels/sph.hpp"
#include "kernels/sse.hpp"
#include "sim/network.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace jungle;
using namespace jungle::kernels;

namespace {

// range(1) of the *Threads variants is the pool lane count; the plain
// variants run on an explicit 1-lane pool so the serial baseline is pinned
// regardless of JUNGLE_THREADS. items_per_second is particles advanced (or
// tree queries served) per wall-clock second — the number whose trajectory
// the speedup acceptance tracks.

void HermiteStepWithLanes(benchmark::State& state, unsigned lanes) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  auto model = amuse::ic::plummer_sphere(n, rng);
  util::ThreadPool pool(lanes);
  HermiteIntegrator nbody;
  nbody.set_thread_pool(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    nbody.add_particle(model.mass[i], model.position[i], model.velocity[i]);
  }
  double t = 0;
  for (auto _ : state) {
    t += 1.0 / 256.0;
    nbody.evolve(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["pairs_per_s"] = benchmark::Counter(
      static_cast<double>(nbody.pair_evaluations()),
      benchmark::Counter::kIsRate);
}

void Kernel_HermiteStep(benchmark::State& state) {
  HermiteStepWithLanes(state, 1);
}

void Kernel_HermiteStepThreads(benchmark::State& state) {
  HermiteStepWithLanes(state, static_cast<unsigned>(state.range(1)));
}

void TreeBuildAndForceWithLanes(benchmark::State& state, unsigned lanes) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  auto model = amuse::ic::plummer_sphere(n, rng);
  util::ThreadPool pool(lanes);
  std::vector<Vec3> accel(model.position.size());
  for (auto _ : state) {
    BarnesHutTree tree(0.6, 1e-4);
    tree.set_thread_pool(&pool);
    tree.build(model.position, model.mass);
    tree.accel_at(model.position, accel);
    benchmark::DoNotOptimize(accel.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}

void Kernel_TreeBuildAndForce(benchmark::State& state) {
  TreeBuildAndForceWithLanes(state, 1);
}

void Kernel_TreeBuildAndForceThreads(benchmark::State& state) {
  TreeBuildAndForceWithLanes(state, static_cast<unsigned>(state.range(1)));
}

void SphStepWithLanes(benchmark::State& state, unsigned lanes) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  auto gas = amuse::ic::gas_sphere(n, rng, 1.0, 1.0);
  util::ThreadPool pool(lanes);
  SphSystem sph;
  sph.set_thread_pool(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    sph.add_particle(gas.mass[i], gas.position[i], gas.velocity[i],
                     gas.internal_energy[i]);
  }
  double t = 0;
  for (auto _ : state) {
    t += 1.0 / 512.0;
    sph.evolve(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["ngb_per_s"] = benchmark::Counter(
      static_cast<double>(sph.neighbour_interactions()),
      benchmark::Counter::kIsRate);
}

void Kernel_SphStep(benchmark::State& state) { SphStepWithLanes(state, 1); }

void Kernel_SphStepThreads(benchmark::State& state) {
  SphStepWithLanes(state, static_cast<unsigned>(state.range(1)));
}

void Kernel_SseEvolve(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  auto masses = amuse::ic::salpeter_masses(n, rng);
  StellarEvolution se;
  for (double m : masses) se.add_star(m);
  double age = 0;
  for (auto _ : state) {
    age += 1.0;
    se.evolve_to(age);
  }
  state.counters["stars_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// The device cost model: identical physics, different virtual cost — the
// paper's Multi-Kernel point in one number.
void Kernel_CpuVsGpuCostModel(benchmark::State& state) {
  jungle::sim::Simulation simulation;
  jungle::sim::Network net{simulation};
  jungle::sim::Host& host = net.add_host("desktop", "vu", 4, 0.15);
  host.set_gpu(jungle::sim::GpuSpec{"geforce-9600gt", 4.0});
  double flops = 1e9;
  double cpu_s = host.compute_time(flops, jungle::sim::DeviceKind::cpu, 2);
  double gpu_s = host.compute_time(flops, jungle::sim::DeviceKind::gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu_s);
    benchmark::DoNotOptimize(gpu_s);
  }
  state.counters["cpu_virt_s_per_GF"] = cpu_s;
  state.counters["gpu_virt_s_per_GF"] = gpu_s;
  state.counters["gpu_speedup"] = cpu_s / gpu_s;
}

// ---- the SIMD sweep: vector inner loops vs their scalar references ----
// Each kernel runs the identical physics twice — set_simd(true) and
// set_simd(false) — from the same ICs. Wall time is best-of-reps (robust
// against scheduler noise); the deviation is the max relative state
// difference, which only lane reassociation can produce. The hermite sweep
// needs a 2-lane pool: a 1-lane pool routes to the sequential symmetric
// path, which is always scalar by design (it is the bit-exactness
// reference) — set_simd only affects the tiled path. The tiled path's
// j-order is fixed per i regardless of lane count, so the scalar/simd
// comparison stays deterministic.

struct SimdRow {
  std::string name;
  double scalar_ms;
  double simd_ms;
  double speedup;        // scalar / simd wall time
  double max_rel_dev;    // physics deviation of the vector path
};

double rel_dev(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double diff = (a[i] - b[i]).norm();
    double scale = b[i].norm() + 1e-12;
    worst = std::max(worst, diff / scale);
  }
  return worst;
}

template <typename Run>
double best_of_ms(Run run, int reps = 3) {
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    run();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    best = std::min(best, ms);
  }
  return best;
}

SimdRow sweep_hermite(std::size_t n) {
  util::Rng rng(21);
  auto model = amuse::ic::plummer_sphere(n, rng);
  util::ThreadPool pool(2);  // >1 lane: engage the tiled (vectorizable) path
  auto evolve = [&](bool simd, std::vector<Vec3>* out) {
    HermiteIntegrator nbody;
    nbody.set_thread_pool(&pool);
    nbody.set_simd(simd);
    for (std::size_t i = 0; i < n; ++i) {
      nbody.add_particle(model.mass[i], model.position[i],
                         model.velocity[i]);
    }
    nbody.evolve(1.0 / 64.0);
    if (out) *out = nbody.positions();
  };
  std::vector<Vec3> scalar_pos, simd_pos;
  evolve(false, &scalar_pos);
  evolve(true, &simd_pos);
  double scalar_ms = best_of_ms([&] { evolve(false, nullptr); });
  double simd_ms = best_of_ms([&] { evolve(true, nullptr); });
  return {"hermite_jblock", scalar_ms, simd_ms, scalar_ms / simd_ms,
          rel_dev(simd_pos, scalar_pos)};
}

SimdRow sweep_sph(std::size_t n) {
  util::Rng rng(22);
  auto gas = amuse::ic::gas_sphere(n, rng, 1.0, 1.0);
  util::ThreadPool pool(1);
  auto evolve = [&](bool simd, std::vector<Vec3>* out) {
    SphSystem sph;
    sph.set_thread_pool(&pool);
    sph.set_simd(simd);
    for (std::size_t i = 0; i < n; ++i) {
      sph.add_particle(gas.mass[i], gas.position[i], gas.velocity[i],
                       gas.internal_energy[i]);
    }
    // Several adaptive substeps: a single step absorbs the ~1-ulp density
    // reassociation below the velocity ulp and reports dev = 0.
    sph.evolve(1.0 / 64.0);
    if (out) *out = sph.positions();
  };
  std::vector<Vec3> scalar_pos, simd_pos;
  evolve(false, &scalar_pos);
  evolve(true, &simd_pos);
  double scalar_ms = best_of_ms([&] { evolve(false, nullptr); });
  double simd_ms = best_of_ms([&] { evolve(true, nullptr); });
  return {"sph_density", scalar_ms, simd_ms, scalar_ms / simd_ms,
          rel_dev(simd_pos, scalar_pos)};
}

SimdRow sweep_bhtree(std::size_t n) {
  util::Rng rng(23);
  auto model = amuse::ic::plummer_sphere(n, rng);
  util::ThreadPool pool(1);
  std::vector<Vec3> accel(n);
  auto force = [&](bool simd) {
    BarnesHutTree tree(0.6, 1e-4);
    tree.set_thread_pool(&pool);
    tree.set_simd(simd);
    tree.build(model.position, model.mass);
    tree.accel_at(model.position, accel);
  };
  std::vector<Vec3> scalar_acc, simd_acc;
  force(false);
  scalar_acc = accel;
  force(true);
  simd_acc = accel;
  double scalar_ms = best_of_ms([&] { force(false); });
  double simd_ms = best_of_ms([&] { force(true); });
  return {"bhtree_leaf", scalar_ms, simd_ms, scalar_ms / simd_ms,
          rel_dev(simd_acc, scalar_acc)};
}

}  // namespace

// The SIMD sweep + JSON artifact, printed after the registered benchmarks.
class KernelsReporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    std::vector<SimdRow> rows;
    rows.push_back(sweep_hermite(1024));
    rows.push_back(sweep_sph(4000));
    rows.push_back(sweep_bhtree(8192));

    std::printf("\n=== SIMD (%s, %zu lanes) vs scalar reference ===\n",
                kernels::simd::kIsa, kernels::simd::kWidth);
    for (const SimdRow& row : rows) {
      std::printf("  %-16s scalar=%8.3f ms  simd=%8.3f ms  %.2fx  "
                  "dev=%.3g\n",
                  row.name.c_str(), row.scalar_ms, row.simd_ms, row.speedup,
                  row.max_rel_dev);
    }

    std::ofstream json("BENCH_kernels.json");
    json << "{\n  \"isa\": \"" << kernels::simd::kIsa << "\",\n";
    json << "  \"lanes\": " << kernels::simd::kWidth << ",\n";
    json << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"name\": \"" << rows[i].name
           << "\", \"scalar_ms\": " << rows[i].scalar_ms
           << ", \"simd_ms\": " << rows[i].simd_ms
           << ", \"simd_speedup\": " << rows[i].speedup
           << ", \"max_rel_dev\": " << rows[i].max_rel_dev << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_kernels.json (%zu rows)\n", rows.size());
    benchmark::ConsoleReporter::Finalize();
  }
};

BENCHMARK(Kernel_HermiteStep)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Kernel_HermiteStepThreads)
    ->ArgsProduct({{8192}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_TreeBuildAndForce)->Arg(1024)->Arg(8192)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Kernel_TreeBuildAndForceThreads)
    ->ArgsProduct({{8192}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_SphStep)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Kernel_SphStepThreads)
    ->ArgsProduct({{4000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_SseEvolve)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_CpuVsGpuCostModel);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  KernelsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
