// E11 — §6.2 kernel claims: GPU variants of a kernel give the same physics
// dramatically faster; tree codes beat direct summation at scale. These are
// *real* wall-clock microbenchmarks of the kernels plus the virtual-cost
// ratios of the CPU/GPU device model.
#include <benchmark/benchmark.h>

#include "amuse/ic.hpp"
#include "kernels/bhtree.hpp"
#include "kernels/hermite.hpp"
#include "kernels/sph.hpp"
#include "kernels/sse.hpp"
#include "sim/network.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace jungle;
using namespace jungle::kernels;

namespace {

// range(1) of the *Threads variants is the pool lane count; the plain
// variants run on an explicit 1-lane pool so the serial baseline is pinned
// regardless of JUNGLE_THREADS. items_per_second is particles advanced (or
// tree queries served) per wall-clock second — the number whose trajectory
// the speedup acceptance tracks.

void HermiteStepWithLanes(benchmark::State& state, unsigned lanes) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  auto model = amuse::ic::plummer_sphere(n, rng);
  util::ThreadPool pool(lanes);
  HermiteIntegrator nbody;
  nbody.set_thread_pool(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    nbody.add_particle(model.mass[i], model.position[i], model.velocity[i]);
  }
  double t = 0;
  for (auto _ : state) {
    t += 1.0 / 256.0;
    nbody.evolve(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["pairs_per_s"] = benchmark::Counter(
      static_cast<double>(nbody.pair_evaluations()),
      benchmark::Counter::kIsRate);
}

void Kernel_HermiteStep(benchmark::State& state) {
  HermiteStepWithLanes(state, 1);
}

void Kernel_HermiteStepThreads(benchmark::State& state) {
  HermiteStepWithLanes(state, static_cast<unsigned>(state.range(1)));
}

void TreeBuildAndForceWithLanes(benchmark::State& state, unsigned lanes) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  auto model = amuse::ic::plummer_sphere(n, rng);
  util::ThreadPool pool(lanes);
  std::vector<Vec3> accel(model.position.size());
  for (auto _ : state) {
    BarnesHutTree tree(0.6, 1e-4);
    tree.set_thread_pool(&pool);
    tree.build(model.position, model.mass);
    tree.accel_at(model.position, accel);
    benchmark::DoNotOptimize(accel.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}

void Kernel_TreeBuildAndForce(benchmark::State& state) {
  TreeBuildAndForceWithLanes(state, 1);
}

void Kernel_TreeBuildAndForceThreads(benchmark::State& state) {
  TreeBuildAndForceWithLanes(state, static_cast<unsigned>(state.range(1)));
}

void SphStepWithLanes(benchmark::State& state, unsigned lanes) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  auto gas = amuse::ic::gas_sphere(n, rng, 1.0, 1.0);
  util::ThreadPool pool(lanes);
  SphSystem sph;
  sph.set_thread_pool(&pool);
  for (std::size_t i = 0; i < n; ++i) {
    sph.add_particle(gas.mass[i], gas.position[i], gas.velocity[i],
                     gas.internal_energy[i]);
  }
  double t = 0;
  for (auto _ : state) {
    t += 1.0 / 512.0;
    sph.evolve(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["ngb_per_s"] = benchmark::Counter(
      static_cast<double>(sph.neighbour_interactions()),
      benchmark::Counter::kIsRate);
}

void Kernel_SphStep(benchmark::State& state) { SphStepWithLanes(state, 1); }

void Kernel_SphStepThreads(benchmark::State& state) {
  SphStepWithLanes(state, static_cast<unsigned>(state.range(1)));
}

void Kernel_SseEvolve(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  auto masses = amuse::ic::salpeter_masses(n, rng);
  StellarEvolution se;
  for (double m : masses) se.add_star(m);
  double age = 0;
  for (auto _ : state) {
    age += 1.0;
    se.evolve_to(age);
  }
  state.counters["stars_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// The device cost model: identical physics, different virtual cost — the
// paper's Multi-Kernel point in one number.
void Kernel_CpuVsGpuCostModel(benchmark::State& state) {
  jungle::sim::Simulation simulation;
  jungle::sim::Network net{simulation};
  jungle::sim::Host& host = net.add_host("desktop", "vu", 4, 0.15);
  host.set_gpu(jungle::sim::GpuSpec{"geforce-9600gt", 4.0});
  double flops = 1e9;
  double cpu_s = host.compute_time(flops, jungle::sim::DeviceKind::cpu, 2);
  double gpu_s = host.compute_time(flops, jungle::sim::DeviceKind::gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu_s);
    benchmark::DoNotOptimize(gpu_s);
  }
  state.counters["cpu_virt_s_per_GF"] = cpu_s;
  state.counters["gpu_virt_s_per_GF"] = gpu_s;
  state.counters["gpu_speedup"] = cpu_s / gpu_s;
}

}  // namespace

BENCHMARK(Kernel_HermiteStep)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Kernel_HermiteStepThreads)
    ->ArgsProduct({{8192}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_TreeBuildAndForce)->Arg(1024)->Arg(8192)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Kernel_TreeBuildAndForceThreads)
    ->ArgsProduct({{8192}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_SphStep)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Kernel_SphStepThreads)
    ->ArgsProduct({{4000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_SseEvolve)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_CpuVsGpuCostModel);

BENCHMARK_MAIN();
