// E1 — §6.2 lab scenarios: reproduces the paper's four-configuration
// comparison (353 / 89 / 84 / 62.4 s per iteration) plus the adaptive
// placement scheduler's own configuration. Absolute numbers come from our
// calibrated jungle model; the *shape* (ordering, CPU->GPU factor,
// remote-GPU crossover, jungle win) is what must match.
//
// Besides the console table, the sweep writes BENCH_scenarios.json —
// machine-readable per-scenario numbers (virtual seconds per iteration and
// real iterations per second) so the perf trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

Options bench_options() {
  Options options;
  options.n_stars = 1000;
  options.n_gas = 10000;
  options.iterations = 2;
  return options;
}

void run_kind(benchmark::State& state, Kind kind) {
  Result result;
  for (auto _ : state) {
    result = run_scenario(kind, bench_options());
  }
  state.counters["virt_s_per_iter"] = result.seconds_per_iteration;
  state.counters["paper_s_per_iter"] = paper_seconds_per_iteration(kind);
  state.counters["wan_MB"] = result.wan_bytes / 1e6;
  state.counters["bound_gas"] = result.bound_gas_fraction;
  state.SetLabel(kind_name(kind));
}

void Scenario_LocalCpu(benchmark::State& state) {
  run_kind(state, Kind::local_cpu);
}
void Scenario_LocalGpu(benchmark::State& state) {
  run_kind(state, Kind::local_gpu);
}
void Scenario_RemoteGpu(benchmark::State& state) {
  run_kind(state, Kind::remote_gpu);
}
void Scenario_Jungle(benchmark::State& state) {
  run_kind(state, Kind::jungle);
}
void Scenario_Autoplace(benchmark::State& state) {
  run_kind(state, Kind::autoplace);
}

const char* json_name(Kind kind) {
  switch (kind) {
    case Kind::local_cpu: return "local_cpu";
    case Kind::local_gpu: return "local_gpu";
    case Kind::remote_gpu: return "remote_gpu";
    case Kind::jungle: return "jungle";
    case Kind::sc11: return "sc11";
    case Kind::autoplace: return "autoplace";
  }
  return "?";
}

}  // namespace

BENCHMARK(Scenario_LocalCpu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_LocalGpu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_RemoteGpu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_Jungle)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_Autoplace)->Iterations(1)->Unit(benchmark::kMillisecond);

// Print the paper-style summary table after the sweep and persist the
// numbers as JSON for cross-PR tracking.
class ScenarioReporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    std::printf("\n=== E1: paper table (s/iteration) vs this reproduction "
                "(virtual s/iteration) ===\n");
    Options options = bench_options();
    struct Row {
      Kind kind;
      double virt_s_per_iter;
      double items_per_second;  // real bridge iterations per wall second
      double modeled_s_per_iter;
    };
    std::vector<Row> rows;
    double previous = 0.0;
    for (Kind kind : {Kind::local_cpu, Kind::local_gpu, Kind::remote_gpu,
                      Kind::jungle, Kind::autoplace}) {
      auto wall_start = std::chrono::steady_clock::now();
      Result result = run_scenario(kind, options);
      double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      rows.push_back(Row{kind, result.seconds_per_iteration,
                         options.iterations / wall_seconds,
                         result.modeled_seconds_per_iteration});
      std::printf("%-36s paper=%6.1f   ours=%8.3f   ratio-to-prev=%5.2fx\n",
                  kind_name(kind), paper_seconds_per_iteration(kind),
                  result.seconds_per_iteration,
                  previous > 0 ? previous / result.seconds_per_iteration : 0.0);
      previous = result.seconds_per_iteration;
    }

    std::ofstream json("BENCH_scenarios.json");
    json << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"name\": \"" << json_name(rows[i].kind)
           << "\", \"seconds_per_iteration\": " << rows[i].virt_s_per_iter
           << ", \"items_per_second\": " << rows[i].items_per_second
           << ", \"modeled_seconds_per_iteration\": "
           << rows[i].modeled_s_per_iter << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_scenarios.json (%zu scenarios)\n", rows.size());
    benchmark::ConsoleReporter::Finalize();
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ScenarioReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
