// E1 — §6.2 lab scenarios: reproduces the paper's four-configuration
// comparison (353 / 89 / 84 / 62.4 s per iteration). Absolute numbers come
// from our calibrated jungle model; the *shape* (ordering, CPU->GPU factor,
// remote-GPU crossover, jungle win) is what must match.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

Options bench_options() {
  Options options;
  options.n_stars = 1000;
  options.n_gas = 10000;
  options.iterations = 2;
  return options;
}

void run_kind(benchmark::State& state, Kind kind) {
  Result result;
  for (auto _ : state) {
    result = run_scenario(kind, bench_options());
  }
  state.counters["virt_s_per_iter"] = result.seconds_per_iteration;
  state.counters["paper_s_per_iter"] = paper_seconds_per_iteration(kind);
  state.counters["wan_MB"] = result.wan_bytes / 1e6;
  state.counters["bound_gas"] = result.bound_gas_fraction;
  state.SetLabel(kind_name(kind));
}

void Scenario_LocalCpu(benchmark::State& state) {
  run_kind(state, Kind::local_cpu);
}
void Scenario_LocalGpu(benchmark::State& state) {
  run_kind(state, Kind::local_gpu);
}
void Scenario_RemoteGpu(benchmark::State& state) {
  run_kind(state, Kind::remote_gpu);
}
void Scenario_Jungle(benchmark::State& state) {
  run_kind(state, Kind::jungle);
}

}  // namespace

BENCHMARK(Scenario_LocalCpu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_LocalGpu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_RemoteGpu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Scenario_Jungle)->Iterations(1)->Unit(benchmark::kMillisecond);

// Print the paper-style summary table after the sweep.
class ScenarioReporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    std::printf("\n=== E1: paper table (s/iteration) vs this reproduction "
                "(virtual s/iteration) ===\n");
    Options options = bench_options();
    double previous = 0.0;
    for (Kind kind : {Kind::local_cpu, Kind::local_gpu, Kind::remote_gpu,
                      Kind::jungle}) {
      Result result = run_scenario(kind, options);
      std::printf("%-36s paper=%6.1f   ours=%8.3f   ratio-to-prev=%5.2fx\n",
                  kind_name(kind), paper_seconds_per_iteration(kind),
                  result.seconds_per_iteration,
                  previous > 0 ? previous / result.seconds_per_iteration : 0.0);
      previous = result.seconds_per_iteration;
    }
    benchmark::ConsoleReporter::Finalize();
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ScenarioReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
