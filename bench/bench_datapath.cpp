// E-datapath — the wide-area data path overhaul, measured: bytes on the
// wire per bridge step and virtual seconds per iteration, for the
// pre-overhaul synchronous path vs the pipelined/delta/striped one, on
//   * the Fig-6 embedded-cluster run on the jungle testbed (Fig 12 map) —
//     where the delta exchange halves-and-more the per-step WAN volume, and
//   * a deep-WAN 3-hop topology (examples/topologies/deep-wan-3hop.ini) —
//     where pipelining hides the triple latency and striping fills the
//     stream-capped lightpaths,
// plus a single-site LAN reference. Writes BENCH_datapath.json; CI fails if
// the delta path's bytes-per-step regress against the committed numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "amuse/scenario.hpp"
#include "util/bytebuffer.hpp"

using namespace jungle::amuse::scenario;

namespace {

std::string topology_path(const char* name) {
  return std::string(JUNGLE_SOURCE_DIR) + "/examples/topologies/" + name;
}

jungle::util::Config load_topology(const char* name) {
  std::ifstream in(topology_path(name));
  if (!in) {
    throw jungle::ConfigError("cannot open " + topology_path(name));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return jungle::util::Config::parse(text.str());
}

Options fig6_options(Datapath datapath) {
  Options options;  // the production embedded-cluster workload
  options.n_stars = 1000;
  options.n_gas = 10000;
  options.iterations = 4;  // enough steps for the delta caches to settle
  options.datapath = datapath;
  return options;
}

Options wan_options(Datapath datapath) {
  Options options;
  options.n_stars = 400;
  options.n_gas = 3000;
  options.iterations = 4;
  options.datapath = datapath;
  return options;
}

struct Row {
  std::string name;
  double seconds_per_iteration;
  double wan_ipl_bytes_per_step;
  double items_per_second;  // real bridge iterations per wall second
};

Row run_row(const std::string& name, Result (*runner)(Datapath),
            Datapath datapath) {
  auto wall_start = std::chrono::steady_clock::now();
  Result result = runner(datapath);
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return Row{name, result.seconds_per_iteration,
             result.wan_ipl_bytes_per_step,
             static_cast<double>(result.iterations) / wall};
}

Result run_fig6(Datapath datapath) {
  return run_scenario(Kind::jungle, fig6_options(datapath));
}

Result run_deepwan(Datapath datapath) {
  return run_scenario_config(load_topology("deep-wan-3hop.ini"),
                             wan_options(datapath));
}

Result run_lan(Datapath datapath) {
  return run_scenario_config(load_topology("lan-dense.ini"),
                             wan_options(datapath));
}

// Real-time microbench of the scatter-gather framing itself: a worker
// reply carrying a 10k-particle state as borrowed views vs. the owned
// put_vector path it replaced. (The scenario sweep runs once, in the
// reporter below — not here, so CI does not pay it twice.)
void Datapath_FrameStateReply(benchmark::State& state) {
  std::vector<double> mass(10000, 1e-4);
  std::vector<double> rho(10000, 0.5);
  bool views = state.range(0) != 0;
  std::size_t framed = 0;
  for (auto _ : state) {
    jungle::util::ByteWriter reply(8);
    if (views) {
      reply.put_span_view(std::span<const double>(mass));
      reply.put_span_view(std::span<const double>(rho));
    } else {
      reply.put_vector(mass);
      reply.put_vector(rho);
    }
    auto wire = std::move(reply).take();
    benchmark::DoNotOptimize(wire.data());
    framed += wire.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(framed));
  state.SetLabel(views ? "span views" : "owned put_vector");
}

}  // namespace

BENCHMARK(Datapath_FrameStateReply)->Arg(0)->Arg(1);

// The full sweep + JSON artifact, printed after the registered benchmarks.
class DatapathReporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    std::vector<Row> rows;
    rows.push_back(run_row("fig6_jungle_sync", run_fig6,
                           Datapath::synchronous));
    rows.push_back(run_row("fig6_jungle_delta", run_fig6,
                           Datapath::pipelined));
    rows.push_back(run_row("deepwan_sync", run_deepwan,
                           Datapath::synchronous));
    rows.push_back(run_row("deepwan_pipelined", run_deepwan,
                           Datapath::pipelined));
    rows.push_back(run_row("lan_pipelined", run_lan, Datapath::pipelined));

    std::printf("\n=== data path: bytes per bridge step / virtual s per "
                "iteration ===\n");
    for (const Row& row : rows) {
      std::printf("  %-22s wan=%9.0f B/step   %10.4f s/iter\n",
                  row.name.c_str(), row.wan_ipl_bytes_per_step,
                  row.seconds_per_iteration);
    }
    double bytes_ratio =
        rows[0].wan_ipl_bytes_per_step / rows[1].wan_ipl_bytes_per_step;
    double wan_speedup =
        rows[2].seconds_per_iteration / rows[3].seconds_per_iteration;
    std::printf("  delta exchange: %.2fx fewer bytes/step (fig6 jungle)\n",
                bytes_ratio);
    std::printf("  pipelining+striping: %.2fx faster iterations (deep WAN)\n",
                wan_speedup);

    std::ofstream json("BENCH_datapath.json");
    json << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"name\": \"" << rows[i].name
           << "\", \"seconds_per_iteration\": "
           << rows[i].seconds_per_iteration
           << ", \"wan_ipl_bytes_per_step\": "
           << rows[i].wan_ipl_bytes_per_step
           << ", \"items_per_second\": " << rows[i].items_per_second << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"fig6_bytes_ratio_sync_over_delta\": " << bytes_ratio
         << ",\n";
    json << "  \"deepwan_speedup_sync_over_pipelined\": " << wan_speedup
         << "\n}\n";
    std::printf("\nwrote BENCH_datapath.json (%zu rows)\n", rows.size());
    benchmark::ConsoleReporter::Finalize();
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  DatapathReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
