// E9 — §7: "we plan to scale up our experiment significantly, with at least
// a factor 100". Scaling sweeps: (a) problem size N at fixed resources,
// (b) Gadget rank count at fixed N (the substrate the scale-up relies on).
#include <benchmark/benchmark.h>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

void Scaling_ProblemSize(benchmark::State& state) {
  Options options;
  options.n_stars = static_cast<std::size_t>(state.range(0));
  options.n_gas = options.n_stars * 10;
  options.iterations = 1;
  options.with_stellar_evolution = false;
  Result result;
  for (auto _ : state) {
    result = run_scenario(Kind::jungle, options);
  }
  state.counters["virt_s_per_iter"] = result.seconds_per_iteration;
  state.counters["wan_MB"] = result.wan_bytes / 1e6;
  state.counters["n_stars"] = static_cast<double>(options.n_stars);
  state.counters["n_gas"] = static_cast<double>(options.n_gas);
}

}  // namespace

BENCHMARK(Scaling_ProblemSize)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Rank scaling of the parallel Gadget worker alone.
#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"

using namespace jungle;
using namespace jungle::amuse;

namespace {

void Scaling_GadgetRanks(benchmark::State& state) {
  int nranks = static_cast<int>(state.range(0));
  double evolve_s = 0;
  for (auto _ : state) {
    scenario::JungleTestbed bed;
    bed.daemon(bed.desktop());
    bed.simulation().spawn("script", [&] {
      DaemonClient client(bed.sockets(), bed.desktop());
      WorkerSpec hydro{.code = "gadget", .nranks = nranks, .ncores = 8};
      HydroClient gas(client.start_worker(hydro, "das4-vu", nranks));
      util::Rng rng(3);
      auto cloud = ic::gas_sphere(16000, rng, 2.0, 1.5);
      gas.add_gas(cloud.mass, cloud.position, cloud.velocity,
                  cloud.internal_energy);
      double t0 = bed.simulation().now();
      gas.evolve(1.0 / 32.0);
      evolve_s = bed.simulation().now() - t0;
      gas.close();
    });
    bed.simulation().run();
  }
  state.counters["evolve_virt_s"] = evolve_s;
  state.counters["ranks"] = nranks;
}

}  // namespace

BENCHMARK(Scaling_GadgetRanks)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
