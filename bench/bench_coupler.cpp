// E8 — §4.1: "All communication required between different models is done
// through the AMUSE coupler ... it also introduces a potential bottleneck
// when large-scale simulations are done." This ablation measures one
// Fig-7 cross-kick as the gas particle count grows, for two coupling-kernel
// placements: next to the script (data moves over loopback only) and on a
// remote GPU cluster (every state array crosses the WAN through the central
// coupler). The linear growth of the WAN bytes with N is the bottleneck the
// paper's §7 distributed-coupler future work targets.
#include <benchmark/benchmark.h>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"
#include "amuse/scenario.hpp"

using namespace jungle;
using namespace jungle::amuse;

namespace {

struct KickCost {
  double seconds = 0;
  double wan_mb = 0;
};

KickCost cross_kick(std::size_t n_gas, bool remote_coupler) {
  scenario::JungleTestbed bed;
  bed.daemon(bed.desktop());
  KickCost cost;
  bed.simulation().spawn("script", [&] {
    DaemonClient client(bed.sockets(), bed.desktop());
    WorkerSpec grav{.code = "phigrape-gpu"};
    GravityClient stars(client.start_worker(grav, "lgm"));
    WorkerSpec hydro{.code = "gadget", .nranks = 8, .ncores = 8};
    HydroClient gas(client.start_worker(hydro, "das4-vu", 8));
    std::unique_ptr<FieldClient> coupler;
    if (remote_coupler) {
      WorkerSpec field{.code = "octgrav"};
      coupler = std::make_unique<FieldClient>(
          client.start_worker(field, "das4-delft"));
    } else {
      WorkerSpec field{.code = "fi", .ncores = 4};
      coupler = std::make_unique<FieldClient>(
          start_local_worker(bed.sockets(), bed.network(), bed.desktop(),
                             bed.desktop(), field, ChannelKind::mpi));
    }

    util::Rng rng(3);
    auto model = ic::plummer_sphere(1000, rng);
    stars.add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(n_gas, rng, 2.0, 1.5);
    gas.add_gas(cloud.mass, cloud.position, cloud.velocity,
                cloud.internal_energy);

    bed.network().reset_traffic();
    double t0 = bed.simulation().now();
    // The Fig-7 'p-kick': gather states, ship sources, evaluate, kick.
    auto star_state = stars.get_state();
    auto gas_state = gas.get_state();
    coupler->set_sources(gas_state.mass, gas_state.position);
    auto on_stars = coupler->accel_at(star_state.position);
    coupler->set_sources(star_state.mass, star_state.position);
    auto on_gas = coupler->accel_at(gas_state.position);
    std::vector<Vec3> kick_stars(on_stars.size());
    std::vector<Vec3> kick_gas(on_gas.size());
    for (std::size_t i = 0; i < on_stars.size(); ++i) {
      kick_stars[i] = on_stars[i] * 0.01;
    }
    for (std::size_t i = 0; i < on_gas.size(); ++i) {
      kick_gas[i] = on_gas[i] * 0.01;
    }
    stars.kick(kick_stars);
    gas.kick(kick_gas);
    cost.seconds = bed.simulation().now() - t0;
    for (const auto& link : bed.network().traffic_report()) {
      if (link.name == "starplane-uva" || link.name == "starplane-delft" ||
          link.name == "lgm-lightpath" || link.name == "vu-campus") {
        for (double bytes : link.bytes_by_class) cost.wan_mb += bytes / 1e6;
      }
    }
    stars.close();
    gas.close();
    coupler->close();
  });
  bed.simulation().run();
  return cost;
}

void Coupler_CentralBottleneck(benchmark::State& state) {
  auto n_gas = static_cast<std::size_t>(state.range(0));
  KickCost local_cost, remote_cost;
  for (auto _ : state) {
    local_cost = cross_kick(n_gas, /*remote_coupler=*/false);
    remote_cost = cross_kick(n_gas, /*remote_coupler=*/true);
  }
  state.counters["local_coupler_ms"] = local_cost.seconds * 1e3;
  state.counters["remote_coupler_ms"] = remote_cost.seconds * 1e3;
  state.counters["local_wan_MB"] = local_cost.wan_mb;
  state.counters["remote_wan_MB"] = remote_cost.wan_mb;
}

}  // namespace

BENCHMARK(Coupler_CentralBottleneck)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(24000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
