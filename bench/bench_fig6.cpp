// E5 — Fig 6: the four visual stages of the embedded-cluster evolution:
//   a) young stars embedded in a sphere of gas
//   b) gas is expanding
//   c) only a thin shell of gas around the cluster remains
//   d) gas completely removed (note the larger size of the cluster)
// We reproduce the observable content of those frames as numbers: the bound
// gas fraction falls towards zero while the cluster's Lagrangian radii grow.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "amuse/bridge.hpp"
#include "amuse/daemon.hpp"
#include "amuse/diagnostics.hpp"
#include "amuse/ic.hpp"
#include "amuse/scenario.hpp"

using namespace jungle;
using namespace jungle::amuse;

namespace {

struct Stage {
  double time;
  double bound_gas;
  double r50_stars;  // half-mass radius of the cluster
  double r50_gas;
};

std::vector<Stage> run_expulsion(int stages, int steps_per_stage) {
  scenario::JungleTestbed bed;
  std::vector<Stage> result;
  bed.simulation().spawn("script", [&] {
    WorkerSpec grav{.code = "phigrape", .ncores = 4};
    WorkerSpec hydro{.code = "gadget", .nranks = 2};
    WorkerSpec field{.code = "fi", .ncores = 4};
    WorkerSpec sse{.code = "sse"};
    GravityClient stars(start_local_worker(bed.sockets(), bed.network(),
                                           bed.desktop(), bed.desktop(), grav,
                                           ChannelKind::mpi));
    HydroClient gas(start_local_worker(bed.sockets(), bed.network(),
                                       bed.desktop(), bed.desktop(), hydro,
                                       ChannelKind::mpi));
    FieldClient coupler(start_local_worker(bed.sockets(), bed.network(),
                                           bed.desktop(), bed.desktop(),
                                           field, ChannelKind::mpi));
    StellarClient stellar(start_local_worker(bed.sockets(), bed.network(),
                                             bed.desktop(), bed.desktop(),
                                             sse, ChannelKind::mpi));

    util::Rng rng(11);
    const std::size_t n_stars = 200, n_gas = 800;
    auto model = ic::plummer_sphere(n_stars, rng);
    stars.add_particles(model.mass, model.position, model.velocity);
    auto cloud = ic::gas_sphere(n_gas, rng, 2.0, 1.5, 0.25);
    gas.add_gas(cloud.mass, cloud.position, cloud.velocity,
                cloud.internal_energy);
    auto zams = ic::salpeter_masses(n_stars, rng);
    zams[0] = 25.0;
    zams[1] = 18.0;  // a couple of O stars drive the expulsion
    stellar.add_stars(zams);

    Bridge::Config config;
    config.dt = 1.0 / 16.0;
    config.se_every = 1;
    config.myr_per_nbody_time = 8.0;  // accelerated stellar clock so the
                                      // massive stars explode within the run
    config.feedback_efficiency = 0.5;
    config.wind_specific_energy = 100.0;
    config.supernova_energy = 100.0;
    Bridge bridge(stars, gas, coupler, &stellar, config);

    auto snapshot = [&](double time) {
      auto star_state = stars.get_state();
      auto gas_state = gas.get_state();
      double fractions[] = {0.5};
      Stage stage;
      stage.time = time;
      stage.bound_gas = diagnostics::bound_gas_fraction(
          gas_state.mass, gas_state.position, gas_state.velocity,
          gas_state.internal_energy, star_state.mass, star_state.position);
      stage.r50_stars = diagnostics::lagrangian_radii(
          star_state.mass, star_state.position, fractions)[0];
      stage.r50_gas = diagnostics::lagrangian_radii(
          gas_state.mass, gas_state.position, fractions)[0];
      result.push_back(stage);
    };
    snapshot(0.0);
    for (int stage = 1; stage < stages; ++stage) {
      for (int s = 0; s < steps_per_stage; ++s) bridge.step();
      snapshot(bridge.time());
    }
    stars.close();
    gas.close();
    coupler.close();
    stellar.close();
  });
  bed.simulation().run();
  return result;
}

void Fig6_GasExpulsionStages(benchmark::State& state) {
  std::vector<Stage> stages;
  for (auto _ : state) {
    stages = run_expulsion(4, 6);
  }
  if (!stages.empty()) {
    state.counters["bound_gas_t0"] = stages.front().bound_gas;
    state.counters["bound_gas_end"] = stages.back().bound_gas;
    state.counters["r50_stars_t0"] = stages.front().r50_stars;
    state.counters["r50_stars_end"] = stages.back().r50_stars;
    std::printf(
        "\n=== E5: Fig-6 stages (bound gas fraction / cluster r50 / gas "
        "r50) ===\n");
    const char* labels[] = {"a) embedded", "b) expanding", "c) thin shell",
                            "d) gas removed"};
    for (std::size_t i = 0; i < stages.size(); ++i) {
      std::printf("  %-15s t=%5.2f  bound_gas=%5.2f  r50_stars=%5.2f  "
                  "r50_gas=%5.2f\n",
                  i < 4 ? labels[i] : "", stages[i].time,
                  stages[i].bound_gas, stages[i].r50_stars,
                  stages[i].r50_gas);
    }
  }
}

}  // namespace

BENCHMARK(Fig6_GasExpulsionStages)->Iterations(1)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
