// E-obs — the cost of watching: wall-clock overhead of the tracing +
// metrics layer on the Fig-6 embedded-cluster run on the jungle testbed,
// disabled vs enabled, plus a microbench of the disabled fast path (one
// relaxed atomic load, no allocation). Writes BENCH_obs.json; exits
// non-zero when the enabled run costs more than the 3% budget, so CI can
// gate on it directly.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "amuse/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace jungle;
using namespace jungle::amuse::scenario;

namespace {

constexpr double kOverheadBudget = 1.03;  // enabled <= 3% over disabled

Options fig6_options() {
  Options options;
  options.n_stars = 400;
  options.n_gas = 3000;
  options.iterations = 3;
  options.datapath = Datapath::pipelined;
  return options;
}

// Min-of-N wall time of the fig6 jungle run: the minimum is the right
// statistic for an overhead gate — noise only ever adds time.
double min_wall_seconds(bool tracing, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    obs::trace::reset();
    obs::trace::set_enabled(tracing);
    auto start = std::chrono::steady_clock::now();
    Result result = run_scenario(Kind::jungle, fig6_options());
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    benchmark::DoNotOptimize(result.seconds_per_iteration);
    best = std::min(best, wall);
  }
  obs::trace::set_enabled(false);
  return best;
}

// The disabled fast path, in isolation: a span() call with tracing off
// must cost an atomic load and nothing else.
void Obs_DisabledSpan(benchmark::State& state) {
  obs::trace::set_enabled(false);
  for (auto _ : state) {
    obs::trace::Span span = obs::trace::span("bench", "bench");
    benchmark::DoNotOptimize(span.active());
  }
}

void Obs_EnabledSpan(benchmark::State& state) {
  obs::trace::set_enabled(true);
  for (auto _ : state) {
    obs::trace::Span span = obs::trace::span("bench", "bench");
    benchmark::DoNotOptimize(span.active());
  }
  obs::trace::set_enabled(false);
  obs::trace::reset();
}

void Obs_CounterAdd(benchmark::State& state) {
  obs::metrics::Counter& counter = obs::metrics::counter("bench.counter");
  for (auto _ : state) counter.add(1.0);
}

void Obs_HistogramObserve(benchmark::State& state) {
  obs::metrics::Histogram& histogram =
      obs::metrics::histogram("bench.histogram");
  double value = 1e-6;
  for (auto _ : state) {
    histogram.observe(value);
    value = value < 1.0 ? value * 1.0001 : 1e-6;
  }
}

}  // namespace

BENCHMARK(Obs_DisabledSpan);
BENCHMARK(Obs_EnabledSpan);
BENCHMARK(Obs_CounterAdd);
BENCHMARK(Obs_HistogramObserve);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Warm-up once (page cache, lazy registrations), then measure.
  min_wall_seconds(/*tracing=*/false, 1);
  double disabled = min_wall_seconds(/*tracing=*/false, 3);
  double enabled = min_wall_seconds(/*tracing=*/true, 3);
  std::size_t spans = obs::trace::recorded();
  obs::trace::reset();
  double ratio = enabled / disabled;

  std::printf("\n=== tracing overhead (fig6 jungle, min of 3) ===\n");
  std::printf("  disabled: %.3f s wall\n", disabled);
  std::printf("  enabled:  %.3f s wall (%zu spans)\n", enabled, spans);
  std::printf("  ratio:    %.4f (budget %.2f)\n", ratio, kOverheadBudget);

  std::ofstream json("BENCH_obs.json");
  json << "{\n"
       << "  \"disabled_wall_s\": " << disabled << ",\n"
       << "  \"enabled_wall_s\": " << enabled << ",\n"
       << "  \"overhead_ratio\": " << ratio << ",\n"
       << "  \"spans_recorded\": " << spans << ",\n"
       << "  \"budget_ratio\": " << kOverheadBudget << "\n"
       << "}\n";
  std::printf("wrote BENCH_obs.json\n");

  if (ratio > kOverheadBudget) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.2f%% exceeds the %.0f%% budget\n",
                 (ratio - 1.0) * 100.0, (kOverheadBudget - 1.0) * 100.0);
    return 1;
  }
  return 0;
}
