// E3 — §6.1 / Fig 9: the SC11 demonstration. "A worst-case scenario where
// the coupler was running on one side of the Atlantic ocean, and all the
// models were running on the other side", over a transatlantic 1G
// lightpath. The paper demonstrated feasibility; we report the iteration
// time next to the all-local-coupler jungle run, plus the WAN traffic.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "amuse/scenario.hpp"

using namespace jungle::amuse::scenario;

namespace {

Options demo_options() {
  Options options;
  options.n_stars = 1000;
  options.n_gas = 10000;
  options.iterations = 2;
  return options;
}

void Sc11_TransatlanticCoupler(benchmark::State& state) {
  Result result;
  for (auto _ : state) {
    result = run_scenario(Kind::sc11, demo_options());
  }
  state.counters["virt_s_per_iter"] = result.seconds_per_iteration;
  state.counters["wan_MB_per_run"] = result.wan_bytes / 1e6;
  state.counters["wan_ipl_MB"] = result.wan_ipl_bytes / 1e6;
  state.SetLabel("coupler@Seattle, models@NL");
}

void Sc11_LocalCouplerBaseline(benchmark::State& state) {
  Result result;
  for (auto _ : state) {
    result = run_scenario(Kind::jungle, demo_options());
  }
  state.counters["virt_s_per_iter"] = result.seconds_per_iteration;
  state.counters["wan_MB_per_run"] = result.wan_bytes / 1e6;
  state.SetLabel("coupler@VU, models@NL (Fig 12)");
}

}  // namespace

BENCHMARK(Sc11_TransatlanticCoupler)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Sc11_LocalCouplerBaseline)->Iterations(1)->Unit(
    benchmark::kMillisecond);

class Sc11Reporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    Options options = demo_options();
    Result atlantic = run_scenario(Kind::sc11, options);
    Result local = run_scenario(Kind::jungle, options);
    std::printf("\n=== E3: SC11 worst case (Fig 9) ===\n");
    std::printf("coupler@Seattle : %8.3f virt-s/iter, WAN %6.2f MB\n",
                atlantic.seconds_per_iteration, atlantic.wan_bytes / 1e6);
    std::printf("coupler@VU      : %8.3f virt-s/iter, WAN %6.2f MB\n",
                local.seconds_per_iteration, local.wan_bytes / 1e6);
    std::printf("transatlantic overhead: %.2fx — the demo 'works', matching "
                "the paper's feasibility claim\n",
                atlantic.seconds_per_iteration / local.seconds_per_iteration);
    std::printf("\n%s\n", atlantic.dashboard.c_str());
    benchmark::ConsoleReporter::Finalize();
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  Sc11Reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
