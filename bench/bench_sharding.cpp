// E-sharding — domain-decomposed gravity, measured: virtual seconds per
// bridge iteration of one n=1024 Plummer model at workers = 1 / 2 / 4 on
// the lan-dense topology (the scheduler co-places all shards on the
// cluster's LAN), plus the f32-truncation effect on the WAN bytes of a
// sharded model driven across a flagged edge uplink. Writes
// BENCH_sharding.json; the headline number is the workers=4 speedup —
// sharding must buy real iterations/second, or the K nodes are wasted.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "amuse/experiment.hpp"
#include "amuse/ic.hpp"
#include "kernels/morton.hpp"
#include "util/rng.hpp"

using namespace jungle;
using namespace jungle::amuse::experiment;

namespace {

std::string topology_text(const char* name) {
  std::string path =
      std::string(JUNGLE_SOURCE_DIR) + "/examples/topologies/" + name;
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

ExperimentSpec sharded_spec(int workers, std::size_t n) {
  ExperimentSpec spec;
  spec.name = "sharding-w" + std::to_string(workers);
  spec.iterations = 2;
  ModelSpec gravity;
  gravity.name = "gravity";
  gravity.role = sched::Role::gravity;
  gravity.kernel = "phigrape";
  gravity.n = n;
  gravity.workers = workers;
  spec.models.push_back(gravity);
  return spec;
}

struct Row {
  std::string name;
  double seconds_per_iteration;
  double wan_ipl_bytes_per_step;
  double items_per_second;  // real bridge iterations per wall second
};

Row run_row(const std::string& name, const std::string& topology,
            const ExperimentSpec& spec) {
  util::Config config = util::Config::parse(topology);
  JungleTestbed bed(config);
  auto wall_start = std::chrono::steady_clock::now();
  Result result = run_experiment(bed, spec);
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return Row{name, result.seconds_per_iteration,
             result.wan_ipl_bytes_per_step,
             static_cast<double>(result.iterations) / wall};
}

// Real-time microbench of the decomposition primitive itself: the Morton
// sort that turns a particle draw into contiguous shard blocks.
void Sharding_MortonOrder(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  auto model = amuse::ic::plummer_sphere(n, rng);
  for (auto _ : state) {
    auto order = kernels::morton_order(model.position);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}

}  // namespace

BENCHMARK(Sharding_MortonOrder)->Arg(1024)->Arg(8192)->Unit(
    benchmark::kMillisecond);

// The full sweep + JSON artifact, printed after the registered benchmarks.
class ShardingReporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    const std::size_t n = 1024;
    std::string lan = topology_text("lan-dense.ini");
    std::vector<Row> rows;
    for (int workers : {1, 2, 4}) {
      rows.push_back(run_row("lan_workers" + std::to_string(workers), lan,
                             sharded_spec(workers, n)));
    }

    // The f32 satellite: the same 4-shard model driven across the flagged
    // edge uplink, with and without the truncation opt-in. Deterministic
    // byte counts — the f32 row must ship measurably fewer WAN bytes.
    std::string wan = topology_text("sharded-lan.ini");
    std::string wan_f64 = wan;
    auto flag = wan_f64.find("fp_truncate = true");
    if (flag != std::string::npos) {
      wan_f64.replace(flag, 18, "fp_truncate = false");
    }
    rows.push_back(run_row("wan_workers4_f32", wan, sharded_spec(4, n)));
    rows.push_back(run_row("wan_workers4_f64", wan_f64, sharded_spec(4, n)));

    std::printf(
        "\n=== sharding: virtual s per iteration / WAN bytes per step ===\n");
    for (const Row& row : rows) {
      std::printf("  %-18s %10.4f s/iter   wan=%9.0f B/step\n",
                  row.name.c_str(), row.seconds_per_iteration,
                  row.wan_ipl_bytes_per_step);
    }
    double speedup4 =
        rows[0].seconds_per_iteration / rows[2].seconds_per_iteration;
    double f32_saving =
        rows[4].wan_ipl_bytes_per_step / rows[3].wan_ipl_bytes_per_step;
    std::printf("  workers=4: %.2fx faster iterations than workers=1\n",
                speedup4);
    std::printf("  f32 truncation: %.2fx fewer WAN bytes/step\n", f32_saving);

    std::ofstream json("BENCH_sharding.json");
    json << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"name\": \"" << rows[i].name
           << "\", \"seconds_per_iteration\": "
           << rows[i].seconds_per_iteration
           << ", \"wan_ipl_bytes_per_step\": "
           << rows[i].wan_ipl_bytes_per_step
           << ", \"items_per_second\": " << rows[i].items_per_second << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"workers4_speedup_over_workers1\": " << speedup4 << ",\n";
    json << "  \"f32_bytes_ratio_f64_over_f32\": " << f32_saving << "\n}\n";
    std::printf("\nwrote BENCH_sharding.json (%zu rows)\n", rows.size());
    benchmark::ConsoleReporter::Finalize();
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ShardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
