// E4 + E10 — Figs 10/11 and the SmartSockets connectivity claims:
// connection-setup strategies (direct / reverse / relayed) across firewall
// configurations, their setup costs, and the per-link traffic report that
// the IbisDeploy GUI visualizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "smartsockets/smartsockets.hpp"
#include "util/strings.hpp"

using namespace jungle;
using namespace jungle::sim;
using namespace jungle::smartsockets;

namespace {

enum class FirewallCase { open, target_blocked, both_blocked };

const char* case_name(FirewallCase c) {
  switch (c) {
    case FirewallCase::open: return "open->open (direct)";
    case FirewallCase::target_blocked: return "open->firewalled (reverse)";
    case FirewallCase::both_blocked: return "NAT->firewalled (relayed)";
  }
  return "?";
}

struct OverlayWorld {
  Simulation sim;
  Network net{sim};
  SmartSockets sockets{net};

  OverlayWorld(FirewallCase fw) {
    net.add_site("vu");
    net.add_site("leiden");
    net.add_site("hub-site");
    net.add_host("client", "vu", 4, 10);
    net.add_host("server", "leiden", 8, 10);
    net.add_host("hub-box", "hub-site", 4, 10);
    net.add_link("vu", "hub-site", 0.3e-3, 1e9 / 8, "vu-hub");
    net.add_link("hub-site", "leiden", 0.3e-3, 1e9 / 8, "hub-leiden");
    net.add_link("vu", "leiden", 0.5e-3, 1e9 / 8, "vu-leiden");
    if (fw == FirewallCase::target_blocked ||
        fw == FirewallCase::both_blocked) {
      net.host("server").firewall().allow_inbound = false;
    }
    if (fw == FirewallCase::both_blocked) {
      net.host("client").firewall().nat = true;
    }
    sockets.start_hub(net.host("hub-box"));
    sockets.start_hub(net.host("client"));
    sockets.start_hub(net.host("server"));
  }
};

void Overlay_ConnectionSetup(benchmark::State& state) {
  auto fw = static_cast<FirewallCase>(state.range(0));
  double setup_s = 0;
  std::string kind;
  double payload_s = 0;
  for (auto _ : state) {
    OverlayWorld world(fw);
    auto& server = world.sockets.listen(world.net.host("server"), "svc");
    double send_start = 0;
    double drained_at = 0;
    world.net.host("server").spawn("server", [&] {
      auto conn = server.accept();
      while (conn->recv()) {
      }
      drained_at = world.sim.now();  // all 1 MiB delivered
    });
    world.net.host("client").spawn("client", [&] {
      double t0 = world.sim.now();
      auto conn =
          world.sockets.connect(world.net.host("client"),
                                world.net.host("server"), "svc",
                                TrafficClass::ipl);
      setup_s = world.sim.now() - t0;
      kind = connection_kind_name(conn->kind());
      send_start = world.sim.now();
      for (int i = 0; i < 16; ++i) {
        conn->send(std::vector<std::uint8_t>(64 << 10, 1));
      }
      conn->close();
    });
    world.sim.run();
    payload_s = drained_at - send_start;
  }
  state.counters["setup_ms"] = setup_s * 1e3;
  state.counters["send_1MiB_ms"] = payload_s * 1e3;
  state.SetLabel(std::string(case_name(fw)) + " -> " + kind);
}

}  // namespace

BENCHMARK(Overlay_ConnectionSetup)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

class OverlayReporter : public benchmark::ConsoleReporter {
 public:
  void Finalize() override {
    std::printf("\n=== E4/E10: overlay map + traffic (Figs 10/11 analog) "
                "===\n");
    OverlayWorld world(FirewallCase::both_blocked);
    auto& server = world.sockets.listen(world.net.host("server"), "svc");
    world.net.host("server").spawn("server", [&] {
      auto conn = server.accept();
      while (conn->recv()) {
      }
    });
    world.net.host("client").spawn("client", [&] {
      auto conn = world.sockets.connect(world.net.host("client"),
                                        world.net.host("server"), "svc",
                                        TrafficClass::ipl);
      for (int i = 0; i < 8; ++i) {
        conn->send(std::vector<std::uint8_t>(256 << 10, 1));
      }
      conn->close();
    });
    world.sim.run();
    std::printf("-- overlay edges --\n");
    for (const auto& edge : world.sockets.overlay_map()) {
      const char* marker =
          edge.kind == OverlayEdge::Kind::tunnel
              ? "=tunnel="
              : edge.kind == OverlayEdge::Kind::oneway ? "-oneway->"
                                                       : "<------->";
      std::printf("  %s %s %s\n", edge.hub_a.c_str(), marker,
                  edge.hub_b.c_str());
    }
    std::printf("-- per-link traffic (relayed path crosses the hub) --\n");
    for (const auto& link : world.net.traffic_report()) {
      if (link.messages == 0) continue;
      double total = 0;
      for (double b : link.bytes_by_class) total += b;
      std::printf("  %-12s %10s in %llu msgs\n", link.name.c_str(),
                  util::format_bytes(total).c_str(),
                  static_cast<unsigned long long>(link.messages));
    }
    auto stats = world.sockets.setup_stats();
    std::printf("setups: direct=%d reverse=%d relayed=%d failed=%d\n",
                stats.direct, stats.reverse, stats.relayed, stats.failed);
    benchmark::ConsoleReporter::Finalize();
  }
};

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  OverlayReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
