// E2 — §5 loopback-channel claim: the script<->daemon connection runs over
// a local loopback socket at "over 8 Gbit/second even on a modest laptop"
// with "extremely small latency". We measure the simulated loopback the
// same way: message round trips and bulk throughput between two processes
// on one host.
#include <benchmark/benchmark.h>

#include "smartsockets/smartsockets.hpp"

using namespace jungle;

namespace {

struct LoopbackRig {
  sim::Simulation sim;
  sim::Network net{sim};
  smartsockets::SmartSockets sockets{net};
  sim::Host* host;

  LoopbackRig() {
    net.add_site("local");
    host = &net.add_host("laptop", "local", 4, 10);
    net.set_loopback(5e-6, 10e9 / 8);  // 10 Gbit/s, 5 us
  }
};

void Loopback_Throughput(benchmark::State& state) {
  const auto message_bytes = static_cast<std::size_t>(state.range(0));
  double gbit_per_s = 0;
  for (auto _ : state) {
    LoopbackRig rig;
    auto& server = rig.sockets.listen(*rig.host, "daemon");
    double virt = 0;
    const int messages = 32;
    rig.host->spawn("daemon", [&] {
      auto conn = server.accept();
      while (conn->recv()) {
      }
    });
    rig.host->spawn("script", [&] {
      auto conn = rig.sockets.connect(*rig.host, *rig.host, "daemon",
                                      sim::TrafficClass::control);
      double t0 = rig.sim.now();
      for (int i = 0; i < messages; ++i) {
        conn->send(std::vector<std::uint8_t>(message_bytes, 7));
      }
      conn->close();
      virt = rig.sim.now() - t0;
    });
    rig.sim.run();
    // Sender-side pacing excludes the final in-flight message; use total
    // simulated time instead.
    double total_bits = 8.0 * static_cast<double>(message_bytes) * messages;
    gbit_per_s = total_bits / rig.sim.now() / 1e9;
  }
  state.counters["Gbit_per_s"] = gbit_per_s;
  state.counters["paper_min_Gbit_per_s"] = 8.0;
}

void Loopback_RoundTripLatency(benchmark::State& state) {
  double rtt_us = 0;
  for (auto _ : state) {
    LoopbackRig rig;
    auto& server = rig.sockets.listen(*rig.host, "daemon");
    rig.host->spawn("daemon", [&] {
      auto conn = server.accept();
      while (auto bytes = conn->recv()) {
        conn->send(std::move(*bytes));  // echo
      }
    });
    double virt = 0;
    rig.host->spawn("script", [&] {
      auto conn = rig.sockets.connect(*rig.host, *rig.host, "daemon",
                                      sim::TrafficClass::control);
      const int pings = 64;
      double t0 = rig.sim.now();
      for (int i = 0; i < pings; ++i) {
        conn->send(std::vector<std::uint8_t>(64, 1));
        conn->recv();
      }
      virt = (rig.sim.now() - t0) / pings;
      conn->close();
    });
    rig.sim.run();
    rtt_us = virt * 1e6;
  }
  state.counters["rtt_us"] = rtt_us;
}

}  // namespace

BENCHMARK(Loopback_Throughput)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(16 << 20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Loopback_RoundTripLatency)->Iterations(1)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
