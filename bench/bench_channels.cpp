// E7 — §5 / Fig 5: cost decomposition of the worker channel path. Compares
// the three AMUSE channels (MPI, socket, Ibis-via-daemon) for RPC round
// trips and bulk state transfers, exposing the extra loopback + proxy hops
// of the Ibis design ("we expect very little performance issues rising from
// this extra step in communication").
#include <benchmark/benchmark.h>

#include "amuse/clients.hpp"
#include "amuse/daemon.hpp"
#include "amuse/ic.hpp"
#include "amuse/scenario.hpp"

using namespace jungle;
using namespace jungle::amuse;

namespace {

// Ping-pong and bulk-state costs over a given channel to a worker placed on
// the client host itself (isolating channel overhead from compute).
struct ChannelCost {
  double rpc_rtt_us = 0;
  double state_64k_ms = 0;  // get_state of 1000 particles (~56 KB)
};

ChannelCost measure_local(ChannelKind kind) {
  scenario::JungleTestbed bed;
  ChannelCost cost;
  bed.simulation().spawn("script", [&] {
    WorkerSpec spec;
    spec.code = "phigrape";
    GravityClient gravity(start_local_worker(
        bed.sockets(), bed.network(), bed.desktop(), bed.desktop(), spec,
        kind));
    util::Rng rng(3);
    auto model = ic::plummer_sphere(1000, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    const int pings = 32;
    double t0 = bed.simulation().now();
    for (int i = 0; i < pings; ++i) gravity.model_time();
    cost.rpc_rtt_us = (bed.simulation().now() - t0) / pings * 1e6;
    double t1 = bed.simulation().now();
    for (int i = 0; i < 8; ++i) gravity.get_state();
    cost.state_64k_ms = (bed.simulation().now() - t1) / 8 * 1e3;
    gravity.close();
  });
  bed.simulation().run();
  return cost;
}

ChannelCost measure_ibis(const std::string& resource) {
  scenario::JungleTestbed bed;
  bed.daemon(bed.desktop());
  ChannelCost cost;
  bed.simulation().spawn("script", [&] {
    DaemonClient client(bed.sockets(), bed.desktop());
    WorkerSpec spec;
    spec.code = "phigrape";
    GravityClient gravity(client.start_worker(spec, resource));
    util::Rng rng(3);
    auto model = ic::plummer_sphere(1000, rng);
    gravity.add_particles(model.mass, model.position, model.velocity);
    const int pings = 32;
    double t0 = bed.simulation().now();
    for (int i = 0; i < pings; ++i) gravity.model_time();
    cost.rpc_rtt_us = (bed.simulation().now() - t0) / pings * 1e6;
    double t1 = bed.simulation().now();
    for (int i = 0; i < 8; ++i) gravity.get_state();
    cost.state_64k_ms = (bed.simulation().now() - t1) / 8 * 1e3;
    gravity.close();
  });
  bed.simulation().run();
  return cost;
}

void Channel_MpiLocal(benchmark::State& state) {
  ChannelCost cost;
  for (auto _ : state) cost = measure_local(ChannelKind::mpi);
  state.counters["rpc_rtt_us"] = cost.rpc_rtt_us;
  state.counters["get_state_ms"] = cost.state_64k_ms;
  state.SetLabel("default MPI channel (local worker)");
}

void Channel_SocketLocal(benchmark::State& state) {
  ChannelCost cost;
  for (auto _ : state) cost = measure_local(ChannelKind::socket);
  state.counters["rpc_rtt_us"] = cost.rpc_rtt_us;
  state.counters["get_state_ms"] = cost.state_64k_ms;
  state.SetLabel("socket channel (local worker)");
}

void Channel_IbisRemoteLgm(benchmark::State& state) {
  ChannelCost cost;
  for (auto _ : state) cost = measure_ibis("lgm");
  state.counters["rpc_rtt_us"] = cost.rpc_rtt_us;
  state.counters["get_state_ms"] = cost.state_64k_ms;
  state.SetLabel("ibis channel: script->daemon->IPL->proxy->worker @leiden");
}

void Channel_IbisRemoteCampus(benchmark::State& state) {
  ChannelCost cost;
  for (auto _ : state) cost = measure_ibis("das4-vu");
  state.counters["rpc_rtt_us"] = cost.rpc_rtt_us;
  state.counters["get_state_ms"] = cost.state_64k_ms;
  state.SetLabel("ibis channel: campus cluster (10G)");
}

}  // namespace

BENCHMARK(Channel_MpiLocal)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Channel_SocketLocal)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(Channel_IbisRemoteLgm)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(Channel_IbisRemoteCampus)->Iterations(1)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
