#!/usr/bin/env python3
"""Data-path regression gate.

Compares a freshly produced BENCH_datapath.json against the reference
committed in the repository and fails when:
  * bytes-per-bridge-step of the delta path on the Fig-6 jungle scenario
    regressed beyond the tolerance,
  * the delta exchange no longer saves >= 2x bytes over the synchronous
    baseline, or
  * the pipelined path is no longer faster than the synchronous one on the
    deep-WAN topology.

Usage: check_datapath.py NEW_JSON REF_JSON
"""

import json
import sys

TOLERANCE = 1.05  # simulated byte counts are deterministic; 5% headroom


def rows_by_name(doc):
    return {row["name"]: row for row in doc["benchmarks"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as handle:
        new = json.load(handle)
    with open(sys.argv[2]) as handle:
        ref = json.load(handle)
    new_rows, ref_rows = rows_by_name(new), rows_by_name(ref)
    failures = []

    name = "fig6_jungle_delta"
    new_bytes = new_rows[name]["wan_ipl_bytes_per_step"]
    ref_bytes = ref_rows[name]["wan_ipl_bytes_per_step"]
    print(f"{name}: {new_bytes:.0f} B/step (ref {ref_bytes:.0f})")
    if new_bytes > ref_bytes * TOLERANCE:
        failures.append(
            f"bytes-per-bridge-step regressed: {new_bytes:.0f} > "
            f"{ref_bytes:.0f} * {TOLERANCE}")

    ratio = new["fig6_bytes_ratio_sync_over_delta"]
    print(f"fig6 bytes ratio sync/delta: {ratio:.2f}x")
    if ratio < 2.0:
        failures.append(f"delta exchange saves only {ratio:.2f}x (< 2x)")

    speedup = new["deepwan_speedup_sync_over_pipelined"]
    print(f"deep-WAN speedup sync/pipelined: {speedup:.2f}x")
    if speedup <= 1.0:
        failures.append(
            f"pipelined path not faster on deep WAN ({speedup:.2f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    print("data path OK")


if __name__ == "__main__":
    main()
