// explore — fault-schedule explorer CLI.
//
//   explore <experiment.ini> [--max-faults N] [--max-schedules N]
//           [--iterations N] [--no-links] [--fail-out FILE]
//           [--victims host,daemon,proxy,worker,timer,link]
//   explore <experiment.ini> --replay "<schedule>"
//
// Enumerates fault schedules against the experiment's checkpoint /
// re-place / rollback protocol and verifies the recovery invariants after
// every run (see DESIGN.md, "Fault model & schedule exploration"). Exits 1
// when any schedule violates an invariant; each violating schedule is a
// one-line repro for --replay. --fail-out appends violating schedules to a
// file (one per line) for CI artifact upload.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "util/error.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <experiment.ini> [--max-faults N] [--max-schedules N]"
               " [--iterations N] [--no-links] [--fail-out FILE]"
               " [--victims host,daemon,proxy,worker,timer,link]"
               " [--replay \"<schedule>\"]\n";
  return 2;
}

/// --victims value: comma-separated kinds; "host" is the whole-machine
/// crash tier (Kind::crash on the wire format).
std::set<jungle::explore::Injection::Kind> parse_victims(
    const std::string& text) {
  using Kind = jungle::explore::Injection::Kind;
  std::set<Kind> kinds;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    if (item == "host" || item == "crash")
      kinds.insert(Kind::crash);
    else if (item == "link")
      kinds.insert(Kind::link);
    else if (item == "daemon")
      kinds.insert(Kind::daemon);
    else if (item == "proxy")
      kinds.insert(Kind::proxy);
    else if (item == "worker")
      kinds.insert(Kind::worker);
    else if (item == "timer")
      kinds.insert(Kind::timer);
    else {
      std::cerr << "unknown victim kind \"" << item
                << "\" (host, daemon, proxy, worker, timer, link)\n";
      std::exit(2);
    }
  }
  return kinds;
}

void describe(const jungle::explore::RunReport& report) {
  std::cout << "  completed:      " << (report.completed ? "yes" : "no")
            << (report.completed ? "" : " (" + report.error + ")") << "\n"
            << "  faults fired:   " << report.fired << "\n"
            << "  recoveries:     " << report.restarts << "\n"
            << "  final digest:   " << std::hex << report.final_digest
            << std::dec << "\n"
            << "  live processes: " << report.live_processes << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string ini_path;
  std::string replay;
  std::string fail_out;
  jungle::explore::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (++i >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--max-faults")
      options.max_faults = std::stoi(value());
    else if (arg == "--max-schedules")
      options.max_schedules = std::stoi(value());
    else if (arg == "--iterations")
      options.iterations = std::stoi(value());
    else if (arg == "--no-links")
      options.link_faults = false;
    else if (arg == "--victims")
      options.victim_kinds = parse_victims(value());
    else if (arg == "--replay")
      replay = value();
    else if (arg == "--fail-out")
      fail_out = value();
    else if (arg == "--help" || arg == "-h")
      return usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    } else if (ini_path.empty())
      ini_path = arg;
    else
      return usage(argv[0]);
  }
  if (ini_path.empty()) return usage(argv[0]);

  try {
    std::ifstream in(ini_path);
    if (!in) {
      std::cerr << "cannot read " << ini_path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    jungle::explore::Explorer explorer(
        jungle::util::Config::parse(text.str()), options);

    if (!replay.empty()) {
      // One deterministic run of the given schedule, checked against the
      // golden run — the repro path for explorer- or CI-found violations.
      jungle::explore::Schedule schedule =
          jungle::explore::parse_schedule(replay);
      jungle::explore::RunReport report = explorer.run_schedule(schedule);
      std::cout << "replay " << jungle::explore::format_schedule(schedule)
                << "\n";
      describe(report);
      std::vector<jungle::explore::Violation> violations;
      explorer.check(schedule, report, violations);
      for (const auto& violation : violations)
        std::cout << "VIOLATION: " << violation.what << "\n";
      return violations.empty() ? 0 : 1;
    }

    jungle::explore::Explorer::Summary summary = explorer.explore();
    std::cout << "golden run:\n";
    describe(explorer.golden());
    std::cout << "explored " << summary.schedules << " fault schedule(s), "
              << summary.pruned << " pruned as equivalent, "
              << summary.violations.size() << " invariant violation(s)\n";
    if (!summary.violations.empty()) {
      std::ofstream fail;
      if (!fail_out.empty()) fail.open(fail_out, std::ios::app);
      for (const auto& violation : summary.violations) {
        std::cout << "VIOLATION: " << violation.what << "\n"
                  << "  replay: --replay \"" << violation.schedule << "\"\n";
        if (fail.is_open())
          fail << violation.schedule << "  # " << violation.what << "\n";
      }
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "explore: " << error.what() << "\n";
    return 2;
  }
}
