#!/usr/bin/env python3
"""Sanity-check and summarize a Chrome trace-event dump.

Usage: trace_summary.py TRACE_JSON

Loads the traceEvents written by obs::trace::write_chrome_trace and
asserts the structural invariants CI relies on:

  * every complete ("X") event has a non-negative duration;
  * every span naming a parent can resolve it (no orphan spans);
  * child spans nest inside their parent's [begin, end] interval
    (same-process parents only — cross-host children are linked by flow
    events and may legitimately outlive the client call's span; client
    "rpc" spans are async — issued in one bridge phase, awaited in a
    later one — so only their begin must fall inside the parent);
  * at least one span was recorded at all.

Prints a per-category summary (count, total duration) and exits 1 on any
violation, so it can gate CI directly.
"""

import collections
import json
import sys

EPSILON_US = 0.5  # ulp slack on interval nesting comparisons


def fail(message):
    print(f"trace_summary: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1]) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents", [])
    spans = {}
    flows = {"s": 0, "f": 0}
    for event in events:
        phase = event.get("ph")
        if phase == "X":
            args = event.get("args", {})
            span_id = args.get("span")
            if span_id is None:
                fail(f"X event without a span id: {event.get('name')}")
            if event.get("dur", -1) < 0:
                fail(f"span {span_id} ({event.get('name')}) has negative "
                     f"duration {event.get('dur')}")
            spans[span_id] = event
        elif phase in flows:
            flows[phase] += 1

    if not spans:
        fail("no spans recorded")

    orphans = 0
    for span_id, event in spans.items():
        parent_id = event.get("args", {}).get("parent", 0)
        if not parent_id:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            orphans += 1
            print(f"trace_summary: orphan span {span_id} "
                  f"({event['name']}): parent {parent_id} not in trace",
                  file=sys.stderr)
            continue
        # Nesting only holds within one simulated process; cross-host
        # children are parented through the wire and checked via flows.
        if (event.get("pid") == parent.get("pid")
                and event.get("tid") == parent.get("tid")):
            begin, end = event["ts"], event["ts"] + event["dur"]
            pbegin = parent["ts"] - EPSILON_US
            pend = parent["ts"] + parent["dur"] + EPSILON_US
            if event.get("cat") == "rpc":
                # Async: issued under the parent, reply awaited later.
                end = begin
            if begin < pbegin or end > pend:
                fail(f"span {span_id} ({event['name']}) "
                     f"[{begin}, {end}] escapes parent {parent_id} "
                     f"({parent['name']}) [{pbegin}, {pend}]")
    if orphans:
        fail(f"{orphans} orphan span(s)")
    if flows["s"] != flows["f"]:
        fail(f"unbalanced flow events: {flows['s']} starts, "
             f"{flows['f']} finishes")

    by_category = collections.defaultdict(lambda: [0, 0.0])
    cross_host = 0
    for event in spans.values():
        entry = by_category[event.get("cat", "?")]
        entry[0] += 1
        entry[1] += event["dur"]
        parent_id = event.get("args", {}).get("parent", 0)
        parent = spans.get(parent_id) if parent_id else None
        if parent is not None and event.get("pid") != parent.get("pid"):
            cross_host += 1

    print(f"trace_summary: {len(spans)} spans, "
          f"{flows['s']} flow links, {cross_host} cross-host parents")
    for category in sorted(by_category):
        count, total_us = by_category[category]
        print(f"  {category:12s} {count:6d} spans  "
              f"{total_us / 1e6:12.6f} virtual s")
    print("trace_summary: OK")


if __name__ == "__main__":
    main()
