#!/usr/bin/env python3
"""SIMD kernel regression gate.

Compares a freshly produced BENCH_kernels.json against the reference
committed in the repository and fails when:
  * any vector path drifts from its scalar reference beyond the physics
    tolerance (lane reassociation explains ~1e-15; anything above 1e-12
    means the vector arithmetic no longer mirrors the scalar loop),
  * the hermite j-block vector path stops beating its scalar tiled
    reference by a real margin, or
  * the sph/bhtree vector paths regress below parity (their SIMD share of
    the whole evolve is small, so they gate on non-regression, not on a
    large speedup).

Wall-clock speedups are noisy on shared CI runners, so the speedup floors
carry generous headroom below the committed reference values; the deviation
gate is exact arithmetic and carries none.

Usage: check_kernels.py NEW_JSON REF_JSON
"""

import json
import sys

MAX_REL_DEV = 1e-12       # lane reassociation only; observed ~1e-15
SPEEDUP_FLOORS = {
    "hermite_jblock": 1.2,  # the SoA j-tile loop is the SIMD showcase
    "sph_density": 0.85,    # gather pass is a small share of evolve
    "bhtree_leaf": 0.85,    # near-leaf lanes amortized over tree walk
}


def rows_by_name(doc):
    return {row["name"]: row for row in doc["benchmarks"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as handle:
        new = json.load(handle)
    with open(sys.argv[2]) as handle:
        ref = json.load(handle)
    new_rows, ref_rows = rows_by_name(new), rows_by_name(ref)
    failures = []

    for name, floor in SPEEDUP_FLOORS.items():
        if name not in new_rows:
            failures.append(f"missing benchmark row: {name}")
            continue
        row = new_rows[name]
        ref_speedup = ref_rows.get(name, {}).get("simd_speedup", float("nan"))
        speedup = row["simd_speedup"]
        dev = row["max_rel_dev"]
        print(f"{name}: {speedup:.2f}x vs scalar (ref {ref_speedup:.2f}x, "
              f"floor {floor}), dev={dev:.3g}")
        if speedup < floor:
            failures.append(
                f"{name} vector path too slow: {speedup:.2f}x < {floor}x")
        if dev > MAX_REL_DEV:
            failures.append(
                f"{name} deviates from scalar reference: {dev:.3g} > "
                f"{MAX_REL_DEV}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    print("simd kernels OK")


if __name__ == "__main__":
    main()
